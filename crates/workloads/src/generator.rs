//! Deterministic synthetic trace generation.
//!
//! A [`TraceGenerator`] expands a [`WorkloadProfile`] into the dynamic
//! micro-op stream one configuration of the machine would execute.
//! The *program* — every address, allocation size, branch outcome and
//! event ordering — is a pure function of the benchmark name, so the
//! Baseline, Watchdog, PA, AOS and PA+AOS streams differ **only** in
//! their instrumentation, exactly like the paper's five builds of one
//! binary. The generator stops after the profile's base-op budget;
//! instrumentation ops ride along uncounted, mirroring the paper's
//! "we do not count instrumented instructions" methodology (§VIII).

use std::collections::VecDeque;

use aos_heap::{HeapAllocator, HeapConfig};
use aos_isa::{expand, Op, SafetyConfig};
use aos_ptrauth::{PointerLayout, PointerSigner};
use aos_qarma::PacKey;
use aos_util::rng::{DiscreteTable, Xoshiro256StarStar, Zipf};

use crate::profile::WorkloadProfile;
use crate::schedule::hash_name;

/// The PA signing context the paper uses for its PAC study (§VI): a
/// fixed 64-bit modifier standing in for the stack pointer.
pub const SIGNING_CONTEXT: u64 = 0x477d_469d_ec0b_8762;

/// The paper's 128-bit QARMA key (§VI).
pub const SIGNING_KEY: u128 = 0x84be_85ce_9804_e94b_ec28_02d4_e0a4_88e9;

/// Base address of the stack/global region touched by unsigned
/// accesses.
const STACK_BASE: u64 = 0x3F00_0000_0000;

/// Base address of the allocator's internal bin metadata.
const BIN_BASE: u64 = 0x3000_0000;

/// Program-counter base of the synthetic branch sites.
const BRANCH_PC_BASE: u64 = 0x40_0000;

/// Spacing between branch sites in the text segment.
const BRANCH_SITE_STRIDE: u64 = 256;

#[derive(Clone, Copy)]
struct LiveChunk {
    /// The register pointer value (signed under AOS configurations).
    ptr: u64,
    /// Raw base address.
    base: u64,
    /// Usable size in bytes.
    size: u64,
    /// Chunk-local hot-window offset for spatial locality.
    hot_offset: u64,
}

/// The generator; see the [module docs](self).
///
/// A `TraceGenerator` is an [`OpStream`](aos_isa::stream::OpStream):
/// feed it to a consumer directly instead of collecting it — the whole
/// pipeline then runs in `O(window)` memory, never materializing the
/// trace. It also implements
/// [`BufferedOps`](aos_isa::stream::BufferedOps), reporting the
/// high-water mark of its internal event buffer (a handful of ops —
/// one program event plus its instrumentation).
///
/// # Examples
///
/// ```
/// use aos_isa::stream::OpStream;
/// use aos_isa::SafetyConfig;
/// use aos_workloads::{generator::TraceGenerator, profile};
///
/// let p = profile::by_name("hmmer").unwrap();
/// // Stream, don't collect: count ops as they flow past.
/// let mut aos = TraceGenerator::new(p, SafetyConfig::Aos, 0.005).metered();
/// let mut base = TraceGenerator::new(p, SafetyConfig::Baseline, 0.005).metered();
/// for _ in &mut aos {}
/// for _ in &mut base {}
/// assert!(aos.ops() > base.ops(), "instrumentation rides along");
/// ```
pub struct TraceGenerator {
    profile: WorkloadProfile,
    config: SafetyConfig,
    signer: PointerSigner,
    heap: HeapAllocator,
    live: VecDeque<LiveChunk>,
    rng: Xoshiro256StarStar,
    zipf: Zipf,
    sizes: DiscreteTable<u64>,
    buffer: VecDeque<Op>,
    /// High-water mark of `buffer` — the generator's entire trace
    /// footprint, measured not asserted.
    peak_buffered: usize,
    base_ops: u64,
    target_base_ops: u64,
    startup_remaining: u64,
    window_max_live: u64,
    ops_since_alloc: u64,
    ops_since_call: u64,
    /// In-flight access burst: programs touch one object several
    /// times in a row (loops over fields/elements), which is what
    /// makes the BWB effective (§V-C).
    burst: Option<LiveChunk>,
    burst_left: u32,
    burst_cursor: u64,
    /// Per-site taken bias for the synthetic branch sites.
    branch_bias: Vec<f64>,
    /// Scratch buffer the `expand::*_site` helpers fill — taken at the
    /// top of each emit method and restored (empty, capacity kept) at
    /// the end, so event generation allocates nothing in steady state.
    extras: Vec<Op>,
}

impl TraceGenerator {
    /// Creates a generator for one benchmark and configuration.
    /// `scale` in `(0, 1]` shrinks the window (op budget, startup
    /// allocations and live-set target) proportionally; resize counts
    /// are only meaningful at scale 1.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is outside `(0, 1]`.
    pub fn new(profile: &WorkloadProfile, config: SafetyConfig, scale: f64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let layout = PointerLayout::default();
        Self {
            profile: *profile,
            config,
            signer: PointerSigner::new(PacKey::from_u128(SIGNING_KEY), layout),
            heap: HeapAllocator::new(HeapConfig {
                limit_bytes: 1 << 44,
                ..HeapConfig::default()
            }),
            live: VecDeque::new(),
            rng: Xoshiro256StarStar::seed_from_u64(hash_name(profile.name)),
            zipf: Zipf::new(profile.hot_chunks.max(1), profile.zipf_exponent),
            sizes: DiscreteTable::new(profile.alloc_sizes.to_vec()),
            buffer: VecDeque::new(),
            peak_buffered: 0,
            base_ops: 0,
            target_base_ops: ((profile.window_instructions as f64 * scale) as u64).max(1),
            startup_remaining: (profile.startup_allocations as f64 * scale).ceil() as u64,
            window_max_live: ((profile.window_max_live as f64 * scale) as u64).max(1),
            ops_since_alloc: 0,
            ops_since_call: 0,
            burst: None,
            burst_left: 0,
            burst_cursor: 0,
            branch_bias: {
                let mut rng = Xoshiro256StarStar::seed_from_u64(
                    hash_name(profile.name) ^ 0xB4A2,
                );
                let sites =
                    (profile.code_footprint / BRANCH_SITE_STRIDE).clamp(64, 8192) as usize;
                (0..sites)
                    // Mostly strongly biased sites with a weak tail,
                    // like real branch populations.
                    .map(|_| if rng.next_bool(0.8) { 0.95 } else { 0.6 })
                    .collect()
            },
            extras: Vec::new(),
        }
    }

    /// Base (uninstrumented) ops emitted so far.
    pub fn base_ops(&self) -> u64 {
        self.base_ops
    }

    /// Live heap chunks right now.
    pub fn live_chunks(&self) -> usize {
        self.live.len()
    }

    /// The most ops the internal event buffer has ever held — the
    /// generator's peak trace memory in ops (one program event plus
    /// its instrumentation, not the trace).
    pub fn peak_buffered_ops(&self) -> usize {
        self.peak_buffered
    }

    fn push_base(&mut self, op: Op) {
        self.base_ops += 1;
        self.ops_since_alloc += 1;
        self.ops_since_call += 1;
        self.buffer.push_back(op);
    }

    fn push_extras(&mut self, extras: &mut Vec<Op>) {
        for op in extras.drain(..) {
            self.buffer.push_back(op);
        }
    }

    fn generate_event(&mut self) {
        if self.startup_remaining > 0 {
            self.startup_remaining -= 1;
            self.emit_malloc();
            return;
        }
        let p = self.profile;
        if p.steady_alloc_period > 0 && self.ops_since_alloc >= p.steady_alloc_period {
            self.ops_since_alloc = 0;
            if self.live.len() as u64 >= self.window_max_live {
                self.emit_free();
            }
            self.emit_malloc();
            return;
        }
        if p.call_period > 0 && self.ops_since_call >= p.call_period {
            self.ops_since_call = 0;
            self.emit_call();
            return;
        }
        let r = self.rng.next_f64();
        if r < p.mem_fraction {
            self.emit_access();
        } else if r < p.mem_fraction + p.branch_fraction {
            let site = self.rng.next_index(self.branch_bias.len());
            // Hot sites cluster at low addresses (zipf-free shortcut:
            // square the uniform draw).
            let site = (site * site) / self.branch_bias.len().max(1);
            let taken = self.rng.next_bool(self.branch_bias[site]);
            let mispredicted = self.rng.next_bool(p.mispredict_rate);
            self.push_base(Op::Branch {
                pc: BRANCH_PC_BASE + site as u64 * BRANCH_SITE_STRIDE,
                taken,
                mispredicted,
            });
        } else if r < p.mem_fraction + p.branch_fraction + p.fp_fraction {
            self.push_base(Op::FpAlu);
        } else {
            self.push_base(Op::IntAlu);
            if self.rng.next_bool(p.pointer_arith_fraction) {
                let mut extras = std::mem::take(&mut self.extras);
                expand::pointer_arith_site(self.config, &mut extras);
                self.push_extras(&mut extras);
                self.extras = extras;
            }
        }
    }

    fn emit_access(&mut self) {
        let p = self.profile;
        let is_store = self.rng.next_bool(p.store_fraction);
        let heap_access = !self.live.is_empty() && self.rng.next_bool(p.heap_fraction);
        let mut extras = std::mem::take(&mut self.extras);
        if heap_access {
            let mut chained = false;
            if self.burst_left == 0 || self.burst.is_none() {
                let chunk = self.pick_burst_chunk();
                // Pointer chasing: reaching a new object often requires
                // the previous object's pointer field first.
                chained = self.rng.next_bool(p.load_chain_fraction);
                // Burst length: 2 + geometric, mean ≈ 6 accesses.
                let mut len = 2u32;
                while len < 32 && self.rng.next_bool(0.8) {
                    len += 1;
                }
                self.burst_cursor = if self.rng.next_bool(p.spatial_locality) {
                    let window = chunk.size.min(4096);
                    (chunk.hot_offset + self.rng.next_range(window.max(8)) / 8 * 8)
                        .min(chunk.size.saturating_sub(8))
                } else {
                    (self.rng.next_range(chunk.size.max(8)) / 8 * 8)
                        .min(chunk.size.saturating_sub(8))
                };
                self.burst = Some(chunk);
                self.burst_left = len;
            }
            let chunk = self.burst.expect("burst set above");
            self.burst_left -= 1;
            let offset = self.burst_cursor;
            // Walk sequentially within the object, wrapping.
            self.burst_cursor = (self.burst_cursor + 8) % chunk.size.max(8) / 8 * 8;
            let pointer = chunk.ptr + offset;
            let is_pointer_value = self.rng.next_bool(p.pointer_memop_fraction);
            expand::access_site(self.config, pointer, &mut extras);
            self.push_extras(&mut extras);
            self.push_base(if is_store {
                Op::Store { pointer, bytes: 8 }
            } else {
                Op::Load {
                    pointer,
                    bytes: 8,
                    chained,
                }
            });
            if is_pointer_value {
                expand::pointer_memop_site(self.config, pointer, is_store, &mut extras);
                self.push_extras(&mut extras);
            }
        } else {
            let offset = if self.rng.next_bool(0.8) {
                self.rng.next_range(4096) / 8 * 8
            } else {
                self.rng.next_range(p.stack_span.max(8)) / 8 * 8
            };
            let pointer = STACK_BASE + offset;
            expand::access_site(self.config, pointer, &mut extras);
            self.push_extras(&mut extras);
            self.push_base(if is_store {
                Op::Store { pointer, bytes: 8 }
            } else {
                Op::Load {
                    pointer,
                    bytes: 8,
                    chained: false,
                }
            });
        }
        self.extras = extras;
    }

    /// Picks a live chunk with recency-biased (Zipf) reuse.
    fn pick_chunk(&mut self) -> usize {
        let len = self.live.len();
        debug_assert!(len > 0);
        if self.rng.next_bool(0.85) {
            let rank = self.zipf.sample(&mut self.rng);
            if rank < len {
                return len - 1 - rank;
            }
        }
        self.rng.next_index(len)
    }

    /// Loop-style revisits: with probability ~0.5 the next burst hits
    /// the same object as the previous one (a loop body touching the
    /// same node each iteration) — the reuse pattern that makes the
    /// BWB effective across bursts, not just within them.
    fn pick_burst_chunk(&mut self) -> LiveChunk {
        if let Some(prev) = self.burst {
            // `emit_free` clears the burst when its chunk dies, so a
            // present burst is always live.
            if self.rng.next_bool(0.5) {
                return prev;
            }
        } else {
            // Keep the RNG stream identical whether or not a previous
            // burst exists.
            let _ = self.rng.next_bool(0.5);
        }
        let idx = self.pick_chunk();
        self.live[idx]
    }

    fn emit_call(&mut self) {
        let mut extras = std::mem::take(&mut self.extras);
        // Prologue.
        expand::function_boundary(self.config, &mut extras);
        self.push_extras(&mut extras);
        self.push_base(Op::IntAlu);
        // Epilogue.
        self.push_base(Op::IntAlu);
        expand::function_boundary(self.config, &mut extras);
        self.push_extras(&mut extras);
        self.extras = extras;
    }

    fn emit_malloc(&mut self) {
        let size = *self.sizes.sample(&mut self.rng);
        let alloc = self
            .heap
            .malloc(size)
            .expect("workload stays within the heap limit");
        let ptr = if self.config.uses_aos() {
            self.signer
                .pacma(alloc.base, SIGNING_CONTEXT, alloc.usable_size)
        } else {
            alloc.base
        };
        let hot_offset = if alloc.usable_size > 4096 {
            self.rng.next_range(alloc.usable_size - 4096) / 16 * 16
        } else {
            0
        };
        // Allocator-internal work (identical for every configuration).
        self.push_base(Op::IntAlu);
        self.push_base(Op::IntAlu);
        self.push_base(Op::Load {
            pointer: BIN_BASE + (size.min(4096) / 16) * 64,
            bytes: 8,
            chained: false,
        });
        self.push_base(Op::Store {
            pointer: alloc.base - 16,
            bytes: 8,
        });
        // Instrumentation (Fig. 7a / Fig. 5a ¬).
        let mut extras = std::mem::take(&mut self.extras);
        expand::malloc_site(self.config, ptr, alloc.usable_size, &mut extras);
        self.push_extras(&mut extras);
        self.extras = extras;
        self.live.push_back(LiveChunk {
            ptr,
            base: alloc.base,
            size: alloc.usable_size,
            hot_offset,
        });
    }

    fn emit_free(&mut self) {
        debug_assert!(!self.live.is_empty());
        // Mostly free old objects, sometimes arbitrary ones.
        let victim = if self.rng.next_bool(0.7) {
            self.live.pop_front().expect("nonempty")
        } else {
            let idx = self.rng.next_index(self.live.len());
            self.live
                .swap_remove_back(idx)
                .expect("index within bounds")
        };
        // A freed chunk must not be touched by an in-flight burst.
        if self.burst.is_some_and(|b| b.base == victim.base) {
            self.burst = None;
            self.burst_left = 0;
        }
        let mut extras = std::mem::take(&mut self.extras);
        // Fig. 7b lines 1–2: bndclr + xpacm before the free body.
        expand::free_site_pre(self.config, victim.ptr, &mut extras);
        self.push_extras(&mut extras);
        // free() internals: header read, bin update.
        self.push_base(Op::Load {
            pointer: victim.base - 16,
            bytes: 8,
            chained: false,
        });
        self.push_base(Op::Store {
            pointer: victim.base - 16,
            bytes: 8,
        });
        self.heap.free(victim.base).expect("live chunk frees cleanly");
        // Fig. 7b line 4: re-sign to lock the dangling pointer.
        expand::free_site_post(self.config, victim.ptr, &mut extras);
        self.push_extras(&mut extras);
        self.extras = extras;
    }
}

impl Iterator for TraceGenerator {
    type Item = Op;

    fn next(&mut self) -> Option<Op> {
        loop {
            if let Some(op) = self.buffer.pop_front() {
                return Some(op);
            }
            if self.base_ops >= self.target_base_ops {
                return None;
            }
            self.generate_event();
            self.peak_buffered = self.peak_buffered.max(self.buffer.len());
        }
    }
}

impl aos_isa::stream::BufferedOps for TraceGenerator {
    fn peak_buffered_ops(&self) -> usize {
        self.peak_buffered
    }
}

impl aos_isa::stream::BatchSource for TraceGenerator {
    /// Batch-native refill: generates events and moves whole event
    /// bursts into the batch, skipping the per-op iterator dispatch.
    /// Event order, RNG draws and the buffer high-water mark are
    /// exactly those of the per-op path, so the emitted trace is
    /// bit-identical.
    fn refill_batch(&mut self, batch: &mut aos_isa::stream::OpBatch) -> usize {
        let mut added = 0;
        loop {
            if batch.capacity() - batch.len() >= self.buffer.len() {
                added += self.buffer.len();
                for op in self.buffer.drain(..) {
                    batch.push(op);
                }
            } else {
                while !batch.is_full() {
                    let Some(op) = self.buffer.pop_front() else { break };
                    batch.push(op);
                    added += 1;
                }
            }
            if batch.is_full() || self.base_ops >= self.target_base_ops {
                break;
            }
            self.generate_event();
            self.peak_buffered = self.peak_buffered.max(self.buffer.len());
        }
        added
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::by_name;
    use aos_isa::InstMix;

    fn collect(name: &str, config: SafetyConfig, scale: f64) -> Vec<Op> {
        TraceGenerator::new(by_name(name).unwrap(), config, scale).collect()
    }

    #[test]
    fn deterministic_across_runs() {
        let a = collect("gcc", SafetyConfig::Aos, 0.002);
        let b = collect("gcc", SafetyConfig::Aos, 0.002);
        assert_eq!(a, b);
    }

    #[test]
    fn program_events_identical_across_configs() {
        // Strip instrumentation from the AOS trace (and signing bits
        // from pointers): the base program must equal the baseline's.
        let layout = PointerLayout::default();
        let base = collect("hmmer", SafetyConfig::Baseline, 0.003);
        let aos: Vec<Op> = collect("hmmer", SafetyConfig::Aos, 0.003)
            .into_iter()
            .filter_map(|op| match op {
                Op::Pacma { .. } | Op::Xpacm | Op::BndStr { .. } | Op::BndClr { .. } => None,
                Op::Load { pointer, bytes, chained } => Some(Op::Load {
                    pointer: layout.address(pointer),
                    bytes,
                    chained,
                }),
                Op::Store { pointer, bytes } => Some(Op::Store {
                    pointer: layout.address(pointer),
                    bytes,
                }),
                other => Some(other),
            })
            .collect();
        assert_eq!(base, aos);
    }

    #[test]
    fn aos_trace_signs_heap_accesses() {
        let layout = PointerLayout::default();
        let mut mix = InstMix::default();
        for op in collect("hmmer", SafetyConfig::Aos, 0.01) {
            mix.record(&op, layout);
        }
        assert!(
            mix.signed_access_fraction() > 0.9,
            "hmmer is nearly all-signed, got {}",
            mix.signed_access_fraction()
        );
        assert!(mix.bnd_ops > 0);
        assert!(mix.pac_ops > 0);
    }

    #[test]
    fn baseline_trace_has_no_instrumentation() {
        let layout = PointerLayout::default();
        let mut mix = InstMix::default();
        for op in collect("gcc", SafetyConfig::Baseline, 0.005) {
            mix.record(&op, layout);
        }
        assert_eq!(mix.bnd_ops, 0);
        assert_eq!(mix.pac_ops, 0);
        assert_eq!(mix.signed_loads + mix.signed_stores, 0);
    }

    #[test]
    fn watchdog_adds_check_uops() {
        let base = collect("gcc", SafetyConfig::Baseline, 0.004);
        let wd = collect("gcc", SafetyConfig::Watchdog, 0.004);
        let checks = wd
            .iter()
            .filter(|o| matches!(o, Op::WdCheck { .. }))
            .count();
        let mems = base
            .iter()
            .filter(|o| matches!(o, Op::Load { .. } | Op::Store { .. }))
            .count();
        // Every data access gets a check µop (plus allocator-internal
        // accesses).
        assert!(checks > 0);
        assert!(checks as f64 > mems as f64 * 0.8, "{checks} vs {mems}");
        let overhead = wd.len() as f64 / base.len() as f64;
        assert!(
            (1.2..1.8).contains(&overhead),
            "Watchdog ~44% more dynamic ops, got {overhead:.2}"
        );
    }

    #[test]
    fn live_set_tracks_target() {
        let p = by_name("sphinx3").unwrap();
        let mut generator = TraceGenerator::new(p, SafetyConfig::Baseline, 0.05);
        while generator.next().is_some() {}
        let target = (p.window_max_live as f64 * 0.05) as u64;
        let live = generator.live_chunks() as u64;
        assert!(
            live >= target / 2 && live <= target + target / 2 + 2,
            "live {live} vs target {target}"
        );
    }

    #[test]
    fn base_op_budget_is_respected() {
        let p = by_name("namd").unwrap();
        let mut generator = TraceGenerator::new(p, SafetyConfig::PaAos, 0.01);
        let total = generator.by_ref().count() as u64;
        let base = generator.base_ops();
        let budget = (p.window_instructions as f64 * 0.01) as u64;
        assert!(base >= budget && base < budget + 16, "base {base}");
        assert!(total >= base, "instrumented total includes base ops");
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn bad_scale_rejected() {
        TraceGenerator::new(by_name("gcc").unwrap(), SafetyConfig::Aos, 1.5);
    }
}
