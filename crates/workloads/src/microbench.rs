//! The Fig. 11 microbenchmark: PAC distribution under QARMA.
//!
//! The paper validates its first assumption — that the PA block cipher
//! behaves like a good hash — by calling `malloc` one million times,
//! computing a 16-bit PAC for every returned address with a fixed key
//! and context, and plotting the occurrences of each PAC value
//! (reported: Avg 16.0, Max 36, Min 3, Stdev 3.99).

use aos_heap::{HeapAllocator, HeapConfig};
use aos_ptrauth::PointerLayout;
use aos_qarma::{truncate_pac, PacKey, Qarma64};
use aos_util::stats::Histogram;
use aos_util::rng::{DiscreteTable, Xoshiro256StarStar};

use crate::generator::{SIGNING_CONTEXT, SIGNING_KEY};

/// Runs the microbenchmark: `allocations` mallocs (never freed, as in
/// the paper's loop), PACs computed over the returned addresses with
/// the paper's key and context, binned into a histogram over the full
/// 16-bit PAC space.
///
/// # Examples
///
/// ```
/// let h = aos_workloads::microbench::pac_distribution(10_000, 16);
/// assert_eq!(h.total(), 10_000);
/// ```
pub fn pac_distribution(allocations: u64, pac_bits: u32) -> Histogram {
    let mut heap = HeapAllocator::new(HeapConfig {
        limit_bytes: 1 << 44,
        ..HeapConfig::default()
    });
    let qarma = Qarma64::new(PacKey::from_u128(SIGNING_KEY));
    let layout = PointerLayout::default();
    let mut rng = Xoshiro256StarStar::seed_from_u64(0x000F_1611);
    // Small-object mix, as a malloc-heavy program would produce.
    let sizes = DiscreteTable::new(vec![(16u64, 2.0), (32, 3.0), (64, 2.0), (128, 1.0), (512, 0.5)]);
    let mut histogram = Histogram::new(1usize << pac_bits);
    // Allocate in runs, then cipher each run through the multi-lane
    // batch path — every address shares SIGNING_CONTEXT, so the tweak
    // schedule is derived once per run instead of once per malloc.
    const RUN: usize = 1024;
    let mut addrs = Vec::with_capacity(RUN);
    let mut pacs = [0u64; RUN];
    let mut remaining = allocations;
    while remaining > 0 {
        let n = remaining.min(RUN as u64) as usize;
        addrs.clear();
        for _ in 0..n {
            let size = *sizes.sample(&mut rng);
            let a = heap.malloc(size).expect("microbench fits in the heap");
            addrs.push(layout.address(a.base));
        }
        qarma.compute_batch_uniform(&addrs, SIGNING_CONTEXT, &mut pacs[..n]);
        for &pac in &pacs[..n] {
            histogram.record(truncate_pac(pac, pac_bits));
        }
        remaining -= n as u64;
    }
    histogram
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_is_uniformish() {
        // 100k allocations over 2^16 bins: mean ~1.53; the QARMA
        // outputs should look Poisson, i.e. stdev close to sqrt(mean)
        // and no pathological clustering.
        let h = pac_distribution(100_000, 16);
        let s = h.occupancy_summary();
        assert_eq!(h.total(), 100_000);
        assert!((s.mean - 100_000.0 / 65536.0).abs() < 1e-9);
        assert!(s.max < 12, "max bin {} suggests clustering", s.max);
        let poisson_stdev = s.mean.sqrt();
        assert!(
            (s.stdev - poisson_stdev).abs() < poisson_stdev * 0.3,
            "stdev {} vs Poisson {}",
            s.stdev,
            poisson_stdev
        );
    }

    #[test]
    fn deterministic() {
        let a = pac_distribution(5_000, 16);
        let b = pac_distribution(5_000, 16);
        assert_eq!(a, b);
    }

    #[test]
    fn smaller_pac_spaces_collide_more() {
        let h11 = pac_distribution(20_000, 11);
        let h16 = pac_distribution(20_000, 16);
        assert!(h11.occupancy_summary().mean > h16.occupancy_summary().mean);
    }
}
