//! Full-program allocation schedules: the Tables II and III
//! reproduction.
//!
//! The paper gathered these profiles with Valgrind `--trace-malloc`
//! over full program runs. We replay an allocation schedule with the
//! same three invariants — total allocations, total deallocations and
//! peak live count — against the real [`aos_heap::HeapAllocator`] and
//! report what the allocator's own accounting measured.

use aos_heap::{HeapAllocator, HeapConfig};
use aos_heap::profile::UsageProfile;
use aos_util::rng::{DiscreteTable, Xoshiro256StarStar};
use std::collections::VecDeque;

use crate::profile::WorkloadProfile;

/// Replays `profile`'s full-program allocation schedule and returns
/// the allocator's measured usage profile.
///
/// The schedule is: ramp to the peak live count, churn
/// (free-oldest-then-allocate pairs) until the allocation budget is
/// spent, then drain the remaining deallocation budget. This
/// reproduces all three reported columns exactly whenever the paper's
/// triple is self-consistent (peak ≥ allocations − deallocations); for
/// the one inconsistent row (soplex), the measured peak is the
/// arithmetically forced minimum — see EXPERIMENTS.md.
///
/// # Examples
///
/// ```
/// use aos_workloads::{profile, schedule};
/// let mcf = profile::by_name("mcf").unwrap();
/// let usage = schedule::run_full_schedule(mcf, 1.0);
/// assert_eq!(usage.allocations, 8);
/// assert_eq!(usage.deallocations, 8);
/// assert_eq!(usage.max_live, 6);
/// ```
pub fn run_full_schedule(profile: &WorkloadProfile, scale: f64) -> UsageProfile {
    assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
    let allocs = ((profile.full_allocations as f64 * scale).round() as u64).max(1);
    let deallocs =
        (profile.full_deallocations as f64 * scale).round() as u64;
    let deallocs = deallocs.min(allocs);
    let peak = ((profile.full_max_active as f64 * scale).round() as u64)
        .clamp(1, allocs)
        .max(allocs - deallocs);

    let mut heap = HeapAllocator::new(HeapConfig {
        limit_bytes: 1 << 44,
        ..HeapConfig::default()
    });
    let mut rng = Xoshiro256StarStar::seed_from_u64(hash_name(profile.name));
    let sizes = DiscreteTable::new(profile.alloc_sizes.to_vec());
    let mut live: VecDeque<u64> = VecDeque::new();

    let malloc = |heap: &mut HeapAllocator, live: &mut VecDeque<u64>,
                  rng: &mut Xoshiro256StarStar| {
        let size = *sizes.sample(rng);
        let a = heap
            .malloc(size)
            .expect("schedule stays within the heap limit");
        live.push_back(a.base);
    };
    let free_oldest = |heap: &mut HeapAllocator, live: &mut VecDeque<u64>| {
        let base = live.pop_front().expect("free requires a live chunk");
        heap.free(base).expect("live chunks free cleanly");
    };

    // Phase 1: ramp to the peak.
    for _ in 0..peak {
        malloc(&mut heap, &mut live, &mut rng);
    }
    // Phase 2: churn pairs.
    for _ in 0..(allocs - peak) {
        free_oldest(&mut heap, &mut live);
        malloc(&mut heap, &mut live, &mut rng);
    }
    // Phase 3: drain the remaining frees.
    let churn_frees = allocs - peak;
    for _ in 0..(deallocs - churn_frees) {
        free_oldest(&mut heap, &mut live);
    }
    *heap.profile()
}

/// Stable tiny hash so each benchmark gets its own deterministic
/// stream.
pub(crate) fn hash_name(name: &str) -> u64 {
    name.bytes()
        .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::by_name;

    #[test]
    fn small_rows_reproduce_exactly() {
        for name in ["bzip2", "mcf", "sjeng", "libquantum", "lbm", "md5sum"] {
            let p = by_name(name).unwrap();
            let u = run_full_schedule(p, 1.0);
            assert_eq!(u.allocations, p.full_allocations, "{name}");
            assert_eq!(u.deallocations, p.full_deallocations, "{name}");
            assert_eq!(u.max_live, p.full_max_active, "{name}");
            assert_eq!(u.live, p.full_allocations - p.full_deallocations, "{name}");
        }
    }

    #[test]
    fn medium_row_reproduces_exactly() {
        let p = by_name("gobmk").unwrap();
        let u = run_full_schedule(p, 1.0);
        assert_eq!(u.allocations, 137_369);
        assert_eq!(u.deallocations, 137_358);
        assert_eq!(u.max_live, 1_021);
    }

    #[test]
    fn soplex_peak_is_forced_by_arithmetic() {
        // The paper's soplex row (peak 140, allocs 98 955, frees
        // 34 025) is internally inconsistent: 64 930 chunks are never
        // freed, so the peak cannot be 140. We measure the forced
        // minimum.
        let p = by_name("soplex").unwrap();
        let u = run_full_schedule(p, 1.0);
        assert_eq!(u.allocations, 98_955);
        assert_eq!(u.deallocations, 34_025);
        assert_eq!(u.max_live, 98_955 - 34_025);
    }

    #[test]
    fn scaling_shrinks_the_schedule_proportionally() {
        let p = by_name("gcc").unwrap();
        let u = run_full_schedule(p, 0.01);
        let expect = (p.full_allocations as f64 * 0.01).round() as u64;
        assert_eq!(u.allocations, expect);
        assert!(u.max_live <= u.allocations);
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn zero_scale_rejected() {
        run_full_schedule(by_name("mcf").unwrap(), 0.0);
    }

    #[test]
    fn name_hash_is_stable_and_distinct() {
        assert_eq!(hash_name("gcc"), hash_name("gcc"));
        assert_ne!(hash_name("gcc"), hash_name("mcf"));
    }
}
