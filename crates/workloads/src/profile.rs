//! Per-benchmark workload profiles.
//!
//! The allocation columns (`full_*`) are the paper's Tables II and III
//! verbatim — they drive the [`crate::schedule`] reproduction. The
//! window and mix parameters are *calibrated*: they encode the
//! benchmark characteristics the paper reports or implies (memory
//! intensity and signed-access fractions from Fig. 16, call-heaviness
//! from the PA discussion of §IX-A, live-set trajectories sized so the
//! HBT resize counts of §IX-A1 emerge, footprints sized so the cache
//! sensitivity ordering of Figs. 14/15/18 emerges). `EXPERIMENTS.md`
//! records how each measured result compares with the paper.

/// Which suite a profile belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPEC CPU 2006 (Table II, Figs. 14–18).
    Spec2006,
    /// Real-world programs (Table III).
    RealWorld,
}

/// A calibrated benchmark model. See the [module docs](self) for what
/// is verbatim versus calibrated.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadProfile {
    /// Benchmark name as the paper prints it.
    pub name: &'static str,
    /// Which table/suite it belongs to.
    pub suite: Suite,

    // --- Tables II/III, verbatim ---
    /// Total allocation calls over the full program.
    pub full_allocations: u64,
    /// Total deallocation calls over the full program.
    pub full_deallocations: u64,
    /// Peak live chunks ("Max Active").
    pub full_max_active: u64,

    // --- simulated-window shape ---
    /// Base (uninstrumented) micro-ops in the timed window at scale 1.
    pub window_instructions: u64,
    /// Allocations performed while the window's live set builds up.
    pub startup_allocations: u64,
    /// Base ops between steady-state allocations (0 = no churn).
    pub steady_alloc_period: u64,
    /// Live-chunk level the window churns around.
    pub window_max_live: u64,

    // --- instruction mix ---
    /// Fraction of base ops that are data loads/stores.
    pub mem_fraction: f64,
    /// Of memory ops, the fraction that are stores.
    pub store_fraction: f64,
    /// Of memory ops, the fraction addressing heap chunks (signed
    /// under AOS — the Fig. 16 series).
    pub heap_fraction: f64,
    /// Fraction of base ops that are branches.
    pub branch_fraction: f64,
    /// Misprediction rate per branch.
    pub mispredict_rate: f64,
    /// Fraction of base ops that are floating-point.
    pub fp_fraction: f64,
    /// Base ops per function boundary (PA signing sites); 0 = none.
    pub call_period: u64,
    /// Of heap accesses, the fraction that move pointer *values*
    /// (Watchdog shadow traffic, PA/PA+AOS authentication sites).
    pub pointer_memop_fraction: f64,
    /// Of integer ops, the fraction that are pointer arithmetic
    /// (Watchdog metadata propagation sites).
    pub pointer_arith_fraction: f64,

    // --- locality ---
    /// How many recently-used chunks form the hot set.
    pub hot_chunks: usize,
    /// Zipf exponent of chunk reuse (higher = hotter).
    pub zipf_exponent: f64,
    /// Bytes of stack/global region touched by non-heap accesses.
    pub stack_span: u64,
    /// Probability a heap access falls in its chunk's hot window
    /// (low values model streaming over large arrays).
    pub spatial_locality: f64,
    /// Fraction of loads that depend on the previous load's value
    /// (pointer chasing); serializes memory latency as in the real
    /// benchmark.
    pub load_chain_fraction: f64,
    /// Approximate hot text-segment size in bytes; sizes the synthetic
    /// branch-site population (and with it the pressure a
    /// `BranchModel::Tage` run puts on the predictor's tables).
    pub code_footprint: u64,
    /// Allocation-size histogram: (bytes, weight).
    pub alloc_sizes: &'static [(u64, f64)],
}

/// Few, very large chunks (mcf's arrays, lbm's grid).
const HUGE: &[(u64, f64)] = &[(24 << 20, 1.0), (48 << 20, 1.0), (96 << 20, 0.5)];
/// A handful of large buffers (bzip2, milc, libquantum).
const BIG: &[(u64, f64)] = &[(256 << 10, 2.0), (1 << 20, 2.0), (4 << 20, 1.0)];
/// Mid-size records (namd, soplex, hmmer).
const MEDIUM: &[(u64, f64)] = &[(256, 2.0), (1024, 2.0), (4096, 1.0), (16384, 0.3)];
/// Small graph/tree nodes (omnetpp, astar).
const SMALL_NODES: &[(u64, f64)] = &[(24, 4.0), (32, 3.0), (48, 2.0), (64, 1.5), (96, 1.0)];
/// gcc's obstack-style mix: many small nodes plus sizeable arrays, so
/// the data footprint far exceeds the L2.
const GCC_NODES: &[(u64, f64)] = &[
    (32, 3.0),
    (64, 2.0),
    (256, 1.5),
    (4096, 0.8),
    (16384, 0.4),
];
/// A broad mix (povray, h264ref, sphinx3).
const MIXED: &[(u64, f64)] = &[
    (32, 3.0),
    (64, 2.0),
    (256, 1.5),
    (1024, 1.0),
    (8192, 0.4),
];

/// The sixteen SPEC CPU 2006 workloads of Table II, in the paper's
/// order.
pub const SPEC2006: &[WorkloadProfile] = &[
    WorkloadProfile {
        name: "bzip2",
        suite: Suite::Spec2006,
        full_allocations: 29,
        full_deallocations: 25,
        full_max_active: 10,
        window_instructions: 4_000_000,
        startup_allocations: 10,
        steady_alloc_period: 0,
        window_max_live: 10,
        mem_fraction: 0.42,
        store_fraction: 0.35,
        heap_fraction: 0.85,
        branch_fraction: 0.13,
        mispredict_rate: 0.06,
        fp_fraction: 0.01,
        call_period: 400,
        pointer_memop_fraction: 0.03,
        pointer_arith_fraction: 0.15,
        hot_chunks: 8,
        zipf_exponent: 0.8,
        stack_span: 1 << 20,
        spatial_locality: 0.6,
        load_chain_fraction: 0.1,
        code_footprint: 128 << 10,
        alloc_sizes: BIG,
    },
    WorkloadProfile {
        name: "gcc",
        suite: Suite::Spec2006,
        full_allocations: 1_846_825,
        full_deallocations: 1_829_255,
        full_max_active: 81_825,
        window_instructions: 4_000_000,
        startup_allocations: 58_000,
        steady_alloc_period: 90,
        window_max_live: 60_000,
        mem_fraction: 0.46,
        store_fraction: 0.40,
        heap_fraction: 0.80,
        branch_fraction: 0.16,
        mispredict_rate: 0.04,
        fp_fraction: 0.0,
        call_period: 120,
        pointer_memop_fraction: 0.18,
        pointer_arith_fraction: 0.25,
        hot_chunks: 20_000,
        zipf_exponent: 0.45,
        stack_span: 2 << 20,
        spatial_locality: 0.6,
        load_chain_fraction: 0.35,
        code_footprint: 2 << 20,
        alloc_sizes: GCC_NODES,
    },
    WorkloadProfile {
        name: "mcf",
        suite: Suite::Spec2006,
        full_allocations: 8,
        full_deallocations: 8,
        full_max_active: 6,
        window_instructions: 4_000_000,
        startup_allocations: 6,
        steady_alloc_period: 0,
        window_max_live: 6,
        mem_fraction: 0.40,
        store_fraction: 0.25,
        heap_fraction: 0.75,
        branch_fraction: 0.10,
        mispredict_rate: 0.08,
        fp_fraction: 0.0,
        call_period: 600,
        pointer_memop_fraction: 0.20,
        pointer_arith_fraction: 0.25,
        hot_chunks: 6,
        zipf_exponent: 0.25,
        stack_span: 1 << 19,
        spatial_locality: 0.15,
        load_chain_fraction: 0.5,
        code_footprint: 64 << 10,
        alloc_sizes: HUGE,
    },
    WorkloadProfile {
        name: "milc",
        suite: Suite::Spec2006,
        full_allocations: 6_523,
        full_deallocations: 6_474,
        full_max_active: 61,
        window_instructions: 4_000_000,
        startup_allocations: 61,
        steady_alloc_period: 400_000,
        window_max_live: 61,
        mem_fraction: 0.36,
        store_fraction: 0.30,
        heap_fraction: 0.60,
        branch_fraction: 0.05,
        mispredict_rate: 0.02,
        fp_fraction: 0.30,
        call_period: 700,
        pointer_memop_fraction: 0.03,
        pointer_arith_fraction: 0.08,
        hot_chunks: 61,
        zipf_exponent: 0.4,
        stack_span: 1 << 19,
        spatial_locality: 0.3,
        load_chain_fraction: 0.05,
        code_footprint: 256 << 10,
        alloc_sizes: BIG,
    },
    WorkloadProfile {
        name: "namd",
        suite: Suite::Spec2006,
        full_allocations: 1_328,
        full_deallocations: 1_326,
        full_max_active: 1_316,
        window_instructions: 4_000_000,
        startup_allocations: 1_316,
        steady_alloc_period: 500_000,
        window_max_live: 1_316,
        mem_fraction: 0.38,
        store_fraction: 0.30,
        heap_fraction: 0.50,
        branch_fraction: 0.04,
        mispredict_rate: 0.012,
        fp_fraction: 0.40,
        call_period: 900,
        pointer_memop_fraction: 0.03,
        pointer_arith_fraction: 0.04,
        hot_chunks: 300,
        zipf_exponent: 0.9,
        stack_span: 1 << 18,
        spatial_locality: 0.8,
        load_chain_fraction: 0.05,
        code_footprint: 512 << 10,
        alloc_sizes: MEDIUM,
    },
    WorkloadProfile {
        name: "gobmk",
        suite: Suite::Spec2006,
        full_allocations: 137_369,
        full_deallocations: 137_358,
        full_max_active: 1_021,
        window_instructions: 4_000_000,
        startup_allocations: 1_021,
        steady_alloc_period: 300,
        window_max_live: 1_021,
        mem_fraction: 0.31,
        store_fraction: 0.32,
        heap_fraction: 0.30,
        branch_fraction: 0.20,
        mispredict_rate: 0.09,
        fp_fraction: 0.01,
        call_period: 90,
        pointer_memop_fraction: 0.08,
        pointer_arith_fraction: 0.12,
        hot_chunks: 500,
        zipf_exponent: 0.9,
        stack_span: 1 << 20,
        spatial_locality: 0.8,
        load_chain_fraction: 0.2,
        code_footprint: 3 << 20,
        alloc_sizes: MIXED,
    },
    WorkloadProfile {
        name: "soplex",
        suite: Suite::Spec2006,
        full_allocations: 98_955,
        full_deallocations: 34_025,
        full_max_active: 140,
        window_instructions: 4_000_000,
        startup_allocations: 20_000,
        steady_alloc_period: 400,
        window_max_live: 25_000,
        mem_fraction: 0.36,
        store_fraction: 0.30,
        heap_fraction: 0.60,
        branch_fraction: 0.08,
        mispredict_rate: 0.03,
        fp_fraction: 0.25,
        call_period: 250,
        pointer_memop_fraction: 0.06,
        pointer_arith_fraction: 0.10,
        hot_chunks: 5_000,
        zipf_exponent: 0.8,
        stack_span: 1 << 19,
        spatial_locality: 0.7,
        load_chain_fraction: 0.15,
        code_footprint: 512 << 10,
        alloc_sizes: MEDIUM,
    },
    WorkloadProfile {
        name: "povray",
        suite: Suite::Spec2006,
        full_allocations: 2_461_247,
        full_deallocations: 2_461_107,
        full_max_active: 11_667,
        window_instructions: 4_000_000,
        startup_allocations: 11_667,
        steady_alloc_period: 60,
        window_max_live: 11_667,
        mem_fraction: 0.40,
        store_fraction: 0.35,
        heap_fraction: 0.45,
        branch_fraction: 0.13,
        mispredict_rate: 0.045,
        fp_fraction: 0.25,
        call_period: 45,
        pointer_memop_fraction: 0.08,
        pointer_arith_fraction: 0.08,
        hot_chunks: 2_000,
        zipf_exponent: 1.0,
        stack_span: 1 << 19,
        spatial_locality: 0.8,
        load_chain_fraction: 0.2,
        code_footprint: 1 << 20,
        alloc_sizes: MIXED,
    },
    WorkloadProfile {
        name: "hmmer",
        suite: Suite::Spec2006,
        full_allocations: 1_474_128,
        full_deallocations: 1_474_128,
        full_max_active: 1_450,
        window_instructions: 4_000_000,
        startup_allocations: 1_450,
        steady_alloc_period: 120,
        window_max_live: 1_450,
        mem_fraction: 0.62,
        store_fraction: 0.40,
        heap_fraction: 0.99,
        branch_fraction: 0.06,
        mispredict_rate: 0.015,
        fp_fraction: 0.05,
        call_period: 28,
        pointer_memop_fraction: 0.02,
        pointer_arith_fraction: 0.10,
        hot_chunks: 800,
        zipf_exponent: 0.8,
        stack_span: 1 << 16,
        spatial_locality: 0.9,
        load_chain_fraction: 0.1,
        code_footprint: 128 << 10,
        alloc_sizes: MEDIUM,
    },
    WorkloadProfile {
        name: "sjeng",
        suite: Suite::Spec2006,
        full_allocations: 6,
        full_deallocations: 2,
        full_max_active: 6,
        window_instructions: 4_000_000,
        startup_allocations: 6,
        steady_alloc_period: 0,
        window_max_live: 6,
        mem_fraction: 0.28,
        store_fraction: 0.30,
        heap_fraction: 0.20,
        branch_fraction: 0.22,
        mispredict_rate: 0.10,
        fp_fraction: 0.0,
        call_period: 70,
        pointer_memop_fraction: 0.03,
        pointer_arith_fraction: 0.08,
        hot_chunks: 6,
        zipf_exponent: 0.6,
        stack_span: 2 << 20,
        spatial_locality: 0.8,
        load_chain_fraction: 0.2,
        code_footprint: 256 << 10,
        alloc_sizes: BIG,
    },
    WorkloadProfile {
        name: "libquantum",
        suite: Suite::Spec2006,
        full_allocations: 180,
        full_deallocations: 180,
        full_max_active: 5,
        window_instructions: 4_000_000,
        startup_allocations: 5,
        steady_alloc_period: 400_000,
        window_max_live: 5,
        mem_fraction: 0.26,
        store_fraction: 0.20,
        heap_fraction: 0.70,
        branch_fraction: 0.10,
        mispredict_rate: 0.02,
        fp_fraction: 0.05,
        call_period: 500,
        pointer_memop_fraction: 0.02,
        pointer_arith_fraction: 0.05,
        hot_chunks: 5,
        zipf_exponent: 0.2,
        stack_span: 1 << 16,
        spatial_locality: 0.1,
        load_chain_fraction: 0.05,
        code_footprint: 64 << 10,
        alloc_sizes: BIG,
    },
    WorkloadProfile {
        name: "h264ref",
        suite: Suite::Spec2006,
        full_allocations: 38_275,
        full_deallocations: 38_273,
        full_max_active: 13_857,
        window_instructions: 4_000_000,
        startup_allocations: 13_857,
        steady_alloc_period: 600,
        window_max_live: 13_857,
        mem_fraction: 0.46,
        store_fraction: 0.40,
        heap_fraction: 0.50,
        branch_fraction: 0.10,
        mispredict_rate: 0.035,
        fp_fraction: 0.05,
        call_period: 150,
        pointer_memop_fraction: 0.06,
        pointer_arith_fraction: 0.10,
        hot_chunks: 2_000,
        zipf_exponent: 0.9,
        stack_span: 1 << 19,
        spatial_locality: 0.7,
        load_chain_fraction: 0.15,
        code_footprint: 1 << 20,
        alloc_sizes: MIXED,
    },
    WorkloadProfile {
        name: "lbm",
        suite: Suite::Spec2006,
        full_allocations: 7,
        full_deallocations: 7,
        full_max_active: 5,
        window_instructions: 4_000_000,
        startup_allocations: 5,
        steady_alloc_period: 0,
        window_max_live: 5,
        mem_fraction: 0.30,
        store_fraction: 0.45,
        heap_fraction: 0.90,
        branch_fraction: 0.03,
        mispredict_rate: 0.005,
        fp_fraction: 0.45,
        call_period: 1_500,
        pointer_memop_fraction: 0.01,
        pointer_arith_fraction: 0.05,
        hot_chunks: 5,
        zipf_exponent: 0.3,
        stack_span: 1 << 16,
        spatial_locality: 0.1,
        load_chain_fraction: 0.05,
        code_footprint: 64 << 10,
        alloc_sizes: HUGE,
    },
    WorkloadProfile {
        name: "omnetpp",
        suite: Suite::Spec2006,
        full_allocations: 21_244_416,
        full_deallocations: 21_244_416,
        full_max_active: 1_993_737,
        window_instructions: 6_000_000,
        startup_allocations: 380_000,
        steady_alloc_period: 130,
        window_max_live: 400_000,
        mem_fraction: 0.36,
        store_fraction: 0.40,
        heap_fraction: 0.50,
        branch_fraction: 0.15,
        mispredict_rate: 0.05,
        fp_fraction: 0.01,
        call_period: 40,
        pointer_memop_fraction: 0.15,
        pointer_arith_fraction: 0.20,
        hot_chunks: 150_000,
        zipf_exponent: 0.3,
        stack_span: 1 << 19,
        spatial_locality: 0.35,
        load_chain_fraction: 0.65,
        code_footprint: 1 << 20,
        alloc_sizes: SMALL_NODES,
    },
    WorkloadProfile {
        name: "astar",
        suite: Suite::Spec2006,
        full_allocations: 1_116_621,
        full_deallocations: 1_116_621,
        full_max_active: 190_984,
        window_instructions: 4_000_000,
        startup_allocations: 58_000,
        steady_alloc_period: 400,
        window_max_live: 60_000,
        mem_fraction: 0.40,
        store_fraction: 0.35,
        heap_fraction: 0.70,
        branch_fraction: 0.13,
        mispredict_rate: 0.06,
        fp_fraction: 0.02,
        call_period: 200,
        pointer_memop_fraction: 0.05,
        pointer_arith_fraction: 0.18,
        hot_chunks: 40_000,
        zipf_exponent: 0.4,
        stack_span: 1 << 19,
        spatial_locality: 0.6,
        load_chain_fraction: 0.30,
        code_footprint: 256 << 10,
        alloc_sizes: SMALL_NODES,
    },
    WorkloadProfile {
        name: "sphinx3",
        suite: Suite::Spec2006,
        full_allocations: 14_224_690,
        full_deallocations: 14_024_020,
        full_max_active: 200_686,
        window_instructions: 4_000_000,
        startup_allocations: 130_000,
        steady_alloc_period: 250,
        window_max_live: 135_000,
        mem_fraction: 0.36,
        store_fraction: 0.30,
        heap_fraction: 0.60,
        branch_fraction: 0.10,
        mispredict_rate: 0.03,
        fp_fraction: 0.25,
        call_period: 120,
        pointer_memop_fraction: 0.08,
        pointer_arith_fraction: 0.10,
        hot_chunks: 60_000,
        zipf_exponent: 0.4,
        stack_span: 1 << 19,
        spatial_locality: 0.5,
        load_chain_fraction: 0.3,
        code_footprint: 512 << 10,
        alloc_sizes: MIXED,
    },
];

/// The six real-world programs of Table III.
pub const REAL_WORLD: &[WorkloadProfile] = &[
    real_world("pbzip2", 12_425, 12_423, 110, BIG),
    real_world("pigz", 24_511, 24_511, 110, BIG),
    real_world("axel", 473, 473, 172, MIXED),
    real_world("md5sum", 34, 34, 32, MIXED),
    real_world("apache", 13_360_000, 13_360_000, 7_592, SMALL_NODES),
    real_world("mysql", 28_622, 28_621, 5_380, MEDIUM),
];

/// Real-world rows share a generic server/tool mix; only the Table III
/// allocation columns differ.
const fn real_world(
    name: &'static str,
    allocs: u64,
    deallocs: u64,
    max_active: u64,
    sizes: &'static [(u64, f64)],
) -> WorkloadProfile {
    WorkloadProfile {
        name,
        suite: Suite::RealWorld,
        full_allocations: allocs,
        full_deallocations: deallocs,
        full_max_active: max_active,
        window_instructions: 2_000_000,
        startup_allocations: if max_active < 10_000 { max_active } else { 10_000 },
        steady_alloc_period: 500,
        window_max_live: max_active,
        mem_fraction: 0.35,
        store_fraction: 0.35,
        heap_fraction: 0.55,
        branch_fraction: 0.12,
        mispredict_rate: 0.04,
        fp_fraction: 0.02,
        call_period: 120,
        pointer_memop_fraction: 0.08,
        pointer_arith_fraction: 0.10,
        hot_chunks: 1_000,
        zipf_exponent: 0.8,
        stack_span: 1 << 19,
        spatial_locality: 0.7,
        load_chain_fraction: 0.2,
        code_footprint: 256 << 10,
        alloc_sizes: sizes,
    }
}

/// Looks up a profile by benchmark name across both suites.
pub fn by_name(name: &str) -> Option<&'static WorkloadProfile> {
    SPEC2006
        .iter()
        .chain(REAL_WORLD.iter())
        .find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_spec_and_six_real_world() {
        assert_eq!(SPEC2006.len(), 16);
        assert_eq!(REAL_WORLD.len(), 6);
    }

    #[test]
    fn table_ii_columns_are_verbatim() {
        let gcc = by_name("gcc").unwrap();
        assert_eq!(gcc.full_allocations, 1_846_825);
        assert_eq!(gcc.full_deallocations, 1_829_255);
        assert_eq!(gcc.full_max_active, 81_825);
        let omnetpp = by_name("omnetpp").unwrap();
        assert_eq!(omnetpp.full_allocations, 21_244_416);
        assert_eq!(omnetpp.full_max_active, 1_993_737);
        let mcf = by_name("mcf").unwrap();
        assert_eq!(mcf.full_allocations, 8);
    }

    #[test]
    fn table_iii_columns_are_verbatim() {
        let apache = by_name("apache").unwrap();
        assert_eq!(apache.full_max_active, 7_592);
        let axel = by_name("axel").unwrap();
        assert_eq!(axel.full_allocations, 473);
    }

    #[test]
    fn lookup_misses_return_none() {
        assert!(by_name("doom").is_none());
    }

    #[test]
    fn fractions_are_sane() {
        for p in SPEC2006.iter().chain(REAL_WORLD.iter()) {
            assert!(p.mem_fraction > 0.0 && p.mem_fraction < 0.7, "{}", p.name);
            assert!(
                p.mem_fraction + p.branch_fraction + p.fp_fraction < 1.0,
                "{}",
                p.name
            );
            assert!((0.0..=1.0).contains(&p.heap_fraction), "{}", p.name);
            assert!((0.0..=1.0).contains(&p.store_fraction), "{}", p.name);
            assert!(p.window_instructions > 0, "{}", p.name);
            for &(size, w) in p.alloc_sizes {
                assert!(size > 0 && size <= u32::MAX as u64, "{}", p.name);
                assert!(w > 0.0, "{}", p.name);
            }
        }
    }

    #[test]
    fn hmmer_is_almost_fully_signed() {
        assert!(by_name("hmmer").unwrap().heap_fraction > 0.95);
    }
}
