//! Workload models: calibrated stand-ins for the paper's benchmarks.
//!
//! The paper evaluates SPEC CPU 2006 (first 3 billion instructions,
//! reference inputs) plus six real-world programs. SPEC binaries and
//! inputs cannot be redistributed, so this crate provides *synthetic
//! workload models*, one per benchmark, that reproduce the properties
//! every experiment in the paper actually depends on:
//!
//! - the **allocation schedule** — total `malloc`/`free` counts and
//!   the peak live-chunk count (Tables II and III), replayed against
//!   the real allocator by [`schedule`];
//! - the **instruction mix** — memory intensity, the fraction of
//!   accesses that hit heap objects (= signed pointers under AOS,
//!   Fig. 16), branch/call/FP rates;
//! - the **locality structure** — hot-set sizes and reuse skew that
//!   determine cache behaviour, and with it the cache-pollution
//!   sensitivity that drives Figs. 14, 15 and 18;
//! - the **live-set trajectory** inside the simulated window, which
//!   determines PAC-collision row pressure and therefore HBT resizes
//!   (§IX-A1: one resize in sphinx3, two in omnetpp).
//!
//! [`generator::TraceGenerator`] turns a profile into a deterministic
//! micro-op stream for any [`aos_isa::SafetyConfig`]; the *program*
//! events (addresses, sizes, branch outcomes) are identical across
//! configurations, so normalized execution times compare like with
//! like. [`microbench`] reproduces the Fig. 11 QARMA PAC-distribution
//! study.
//!
//! # Examples
//!
//! ```
//! use aos_isa::stream::OpStream;
//! use aos_isa::SafetyConfig;
//! use aos_workloads::{generator::TraceGenerator, profile};
//!
//! let p = profile::by_name("mcf").unwrap();
//! // A generator is an op *stream*: drain it through a meter instead
//! // of collecting it, and the trace is never materialized.
//! let mut ops = TraceGenerator::new(p, SafetyConfig::Aos, 0.01).metered();
//! for _ in &mut ops {}
//! assert!(ops.ops() > 0);
//! ```

pub mod collisions;
pub mod generator;
pub mod microbench;
pub mod profile;
pub mod schedule;

pub use generator::TraceGenerator;
pub use profile::{WorkloadProfile, SPEC2006, REAL_WORLD};
