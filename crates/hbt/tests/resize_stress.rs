//! Stress tests for gradual resizing: interleave stores, clears and
//! checks with in-flight migrations across multiple generations and
//! verify the table never loses or fabricates a record.

use std::collections::HashMap;

use aos_hbt::{ClearError, CompressedBounds, HashedBoundsTable, HbtConfig};

fn table() -> HashedBoundsTable {
    HashedBoundsTable::new(HbtConfig {
        pac_size: 11,
        initial_ways: 1,
        max_ways: 64,
        base_addr: 0x1000_0000,
        compressed: true,
    })
}

/// A simple deterministic generator (LCG) for the stress schedule.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

#[test]
fn shadow_model_agrees_across_generations() {
    let mut hbt = table();
    let mut shadow: HashMap<u64, (u64, u64)> = HashMap::new(); // base -> (pac, size)
    let mut rng = Lcg(42);
    let mut next_base = 0x10_0000u64;
    let mut resizes = 0;

    for step in 0..60_000u64 {
        let action = rng.next() % 10;
        if action < 6 {
            // Store a fresh record.
            let pac = rng.next() % 2048;
            let size = (rng.next() % 64 + 1) * 16;
            let base = next_base;
            next_base += 1 << 14;
            match hbt.store(pac, CompressedBounds::encode(base, size)) {
                Ok(_) => {
                    shadow.insert(base, (pac, size));
                }
                Err(_) => {
                    hbt.begin_resize();
                    resizes += 1;
                    hbt.store(pac, CompressedBounds::encode(base, size))
                        .expect("store succeeds after resize");
                    shadow.insert(base, (pac, size));
                }
            }
        } else if action < 8 {
            // Clear a random live record.
            if let Some((&base, &(pac, _))) = shadow.iter().next() {
                hbt.clear(pac, base).expect("live record clears");
                shadow.remove(&base);
            }
        } else {
            // Step any in-flight migration a little.
            hbt.step_migration(rng.next() % 64);
        }
        // Spot-check a live record every few steps.
        if step % 97 == 0 {
            if let Some((&base, &(pac, size))) = shadow.iter().next() {
                let hit = hbt.check(pac, base + size / 2, 0);
                assert!(hit.is_some(), "live record lost at step {step}");
            }
        }
        hbt.discard_accesses();
    }
    assert!(resizes >= 2, "stress must cross generations: {resizes}");

    // Full final audit: every shadow record present, every cleared one
    // absent.
    hbt.finish_migration();
    for (&base, &(pac, size)) in &shadow {
        assert!(hbt.check(pac, base, 0).is_some(), "{base:#x} lost");
        assert!(hbt.check(pac, base + size - 1, 0).is_some());
        assert!(hbt.check(pac, base + size, 0).is_none(), "{base:#x} too wide");
    }
    // Clear everything and verify emptiness.
    for (&base, &(pac, _)) in &shadow {
        hbt.clear(pac, base).expect("final clears succeed");
    }
    for (&base, &(pac, _)) in &shadow {
        assert!(hbt.check(pac, base, 0).is_none());
        assert_eq!(hbt.clear(pac, base), Err(ClearError { pac, addr: base }));
    }
}

#[test]
fn migration_preserves_row_occupancy_counts() {
    let mut hbt = table();
    // Load three rows with known occupancy.
    for i in 0..5u64 {
        hbt.store(100, CompressedBounds::encode(0x20_0000 + i * 0x1000, 32))
            .unwrap();
    }
    for i in 0..8u64 {
        hbt.store(200, CompressedBounds::encode(0x40_0000 + i * 0x1000, 32))
            .unwrap();
    }
    hbt.store(300, CompressedBounds::encode(0x60_0000, 32)).unwrap();

    hbt.begin_resize();
    // Occupancy must be stable at every migration step.
    while hbt.in_migration() {
        assert_eq!(hbt.row_occupancy(100), 5);
        assert_eq!(hbt.row_occupancy(200), 8);
        assert_eq!(hbt.row_occupancy(300), 1);
        hbt.step_migration(100);
    }
    assert_eq!(hbt.row_occupancy(100), 5);
    assert_eq!(hbt.row_occupancy(200), 8);
    assert_eq!(hbt.row_occupancy(300), 1);
}

#[test]
fn back_to_back_resizes_reach_max_ways() {
    let mut hbt = table();
    let mut stored = 0u64;
    // Keep hammering one PAC row; every overflow doubles the ways.
    for ways_target in [2u32, 4, 8, 16, 32, 64] {
        loop {
            let base = 0x100_0000 + stored * 0x1000;
            match hbt.store(42, CompressedBounds::encode(base, 16)) {
                Ok(_) => stored += 1,
                Err(_) => {
                    hbt.begin_resize();
                    assert_eq!(hbt.ways(), ways_target);
                    break;
                }
            }
        }
    }
    assert_eq!(stored, 8 * 32, "8 slots per way, filled through 32 ways");
    // All records remain checkable at 64 ways.
    hbt.finish_migration();
    for i in 0..stored {
        let base = 0x100_0000 + i * 0x1000;
        assert!(hbt.check(42, base + 8, 0).is_some(), "record {i} lost");
    }
}

#[test]
fn line_addresses_stay_disjoint_across_generations() {
    let mut hbt = table();
    let mut seen = std::collections::HashSet::new();
    for _ in 0..3 {
        for pac in [0u64, 1, 2047] {
            for way in 0..hbt.ways() {
                let addr = hbt.line_address(pac, way);
                assert_eq!(addr % 64, 0);
                assert!(seen.insert(addr), "line {addr:#x} reused across tables");
            }
        }
        hbt.begin_resize();
        hbt.finish_migration();
        seen.clear(); // only require disjointness within one generation
    }
}
