//! Property tests for the CRC-3 integrity field of compressed bounds
//! records under single- and double-bit corruption.
//!
//! The contract: a corrupted record must **fail closed** — it may
//! never validate an access the uncorrupted record would have
//! rejected. Single-bit flips are always caught (every bit position
//! has a nonzero syndrome contribution). Double-bit flips are caught
//! exactly when the two positions fall in *different* CRC residue
//! classes; the same-class escape is the documented limit of a 3-bit
//! code and is pinned here so it cannot silently widen.

use proptest::prelude::*;

use aos_hbt::CompressedBounds;

/// CRC-3 residue class of a raw-record bit position: payload bit `p`
/// contributes `x^p mod g`, check bit `c` (bits 61..64) cancels
/// payload class `c - 61`.
fn crc_class(bit: u32) -> u32 {
    if bit < 61 {
        bit % 7
    } else {
        (bit - 61) % 7
    }
}

fn flip(record: CompressedBounds, bit: u32) -> CompressedBounds {
    CompressedBounds::from_raw(record.to_raw() ^ (1u64 << bit))
}

proptest! {
    /// Encoding round-trips exactly for every legal (base, size), and
    /// the untampered record validates its own range.
    #[test]
    fn encode_roundtrips_and_validates(
        base16 in 1u64..(1 << 28),
        size in 1u64..=(u32::MAX as u64),
    ) {
        let base = base16 * 16;
        let b = CompressedBounds::encode(base, size);
        prop_assert!(b.integrity_ok());
        prop_assert_eq!(b.size(), size);
        prop_assert_eq!(b.lower(), base & (((1u64 << 29) - 1) << 4));
        prop_assert!(b.check(base));
        prop_assert!(b.matches_base(base));
    }

    /// Any single-bit flip anywhere in the 64-bit record is caught:
    /// the record validates nothing at all afterwards.
    #[test]
    fn single_bit_flips_never_validate_anything(
        base16 in 1u64..(1 << 28),
        size in 1u64..=(u32::MAX as u64),
        bit in 0u32..64,
        probe in 0u64..(1 << 20),
    ) {
        let base = base16 * 16;
        let b = flip(CompressedBounds::encode(base, size), bit);
        prop_assert!(!b.integrity_ok() || b.is_empty());
        // Fail closed: in-bounds, boundary and arbitrary addresses
        // all refuse to validate.
        prop_assert!(!b.check(base));
        prop_assert!(!b.check(base + probe % size));
        prop_assert!(!b.matches_base(base));
    }

    /// A double flip across *different* CRC residue classes is always
    /// caught — the corrupted record never validates an access that
    /// is out of bounds for the original record, and in fact
    /// validates nothing.
    #[test]
    fn cross_class_double_flips_never_validate_oob(
        base16 in 1u64..(1 << 28),
        size in 1u64..=(u32::MAX as u64),
        a in 0u32..64,
        b in 0u32..64,
        probe in 0u64..(1 << 33),
    ) {
        if a == b || crc_class(a) == crc_class(b) {
            return Ok(());
        }
        let base = base16 * 16;
        let original = CompressedBounds::encode(base, size);
        let corrupted = flip(flip(original, a), b);
        prop_assert!(!corrupted.integrity_ok());
        let oob = !original.check(probe);
        if oob {
            prop_assert!(!corrupted.check(probe), "bits {a},{b} validated an OOB probe");
        }
        // Stronger: a cross-class corruption validates nothing.
        prop_assert!(!corrupted.check(probe));
        prop_assert!(!corrupted.matches_base(base));
    }

    /// The documented escape, pinned: a double flip inside one residue
    /// class keeps the CRC syndrome at zero, so the integrity check
    /// alone cannot see it. This is the exact (and only) blind spot.
    #[test]
    fn same_class_double_flips_are_the_only_crc_escape(
        base16 in 1u64..(1 << 28),
        size in 1u64..=(u32::MAX as u64),
        a in 0u32..64,
        b in 0u32..64,
    ) {
        if a == b {
            return Ok(());
        }
        let corrupted = flip(flip(CompressedBounds::encode(base16 * 16, size), a), b);
        prop_assert_eq!(
            corrupted.integrity_ok(),
            crc_class(a) == crc_class(b),
            "escape predicate must match residue arithmetic for bits {} and {}",
            a,
            b
        );
    }
}
