//! Property tests for the HBT's telemetry counters.
//!
//! The contract: the counters are pure bookkeeping over the table's
//! observable behaviour, so for *any* sequence of stores, clears,
//! checks and resizes the accounting identities hold exactly —
//!
//! - every lookup is either a hit or a miss, never both or neither;
//! - successful inserts minus successful clears equals the number of
//!   live records in the table;
//! - the migration-row counter is bounded by `rows × resizes` and
//!   reaches it exactly once every migration drains.
//!
//! The sequences interleave resizes, so the identities are exercised
//! under both the initial and the doubled associativity.

use proptest::prelude::*;

use aos_hbt::{CompressedBounds, HashedBoundsTable, HbtConfig};
use aos_isa::strategy::action_script;
use aos_util::{Counter, Telemetry, TelemetrySnapshot};

/// The smallest legal table (11-bit PACs, 2048 rows) keeps each case
/// cheap while leaving plenty of room for collisions.
const PAC_SIZE: u32 = 11;
const ROWS: u64 = 1 << PAC_SIZE;

fn table(telemetry: &Telemetry) -> HashedBoundsTable {
    HashedBoundsTable::new(HbtConfig {
        pac_size: PAC_SIZE,
        initial_ways: 1,
        max_ways: 8,
        ..HbtConfig::default()
    })
    .with_telemetry(telemetry.clone())
}

/// One scripted table operation: `(kind, pac, arg)` decodes to a
/// store / clear / check / resize-and-partially-migrate — the shared
/// `aos_isa::strategy` action-script shape.
type ScriptOp = (u8, u64, u64);

fn script() -> impl Strategy<Value = Vec<ScriptOp>> {
    action_script(0u8..4, 0u64..ROWS, 0u64..48, 1..160)
}

/// Replays a script against a fresh telemetry-enabled table and
/// returns `(table, model)` where the model is derived only from the
/// operations' observable results, never from the counters.
struct Model {
    inserts: u64,
    clears: u64,
    failed_clears: u64,
    resizes: u64,
}

fn replay(ops: &[ScriptOp], telemetry: &Telemetry) -> (HashedBoundsTable, Model) {
    let mut hbt = table(telemetry);
    let mut model = Model {
        inserts: 0,
        clears: 0,
        failed_clears: 0,
        resizes: 0,
    };
    for &(kind, pac, arg) in ops {
        // Bases are 16-aligned and nonzero; a small shared pool makes
        // clears and checks land on live records often enough to
        // exercise both outcome arms.
        let addr = (arg + 1) * 16;
        match kind {
            0 => {
                if hbt.store(pac, CompressedBounds::encode(addr, 32)).is_ok() {
                    model.inserts += 1;
                }
            }
            1 => match hbt.clear(pac, addr) {
                Ok(_) => model.clears += 1,
                Err(_) => model.failed_clears += 1,
            },
            2 => {
                let _ = hbt.check(pac, addr, 0);
            }
            _ => {
                if hbt.try_begin_resize().is_ok() {
                    model.resizes += 1;
                    // Migrate only part of the table so later ops run
                    // against the split old/new-quadrant state.
                    hbt.step_migration(arg + 1);
                }
            }
        }
    }
    (hbt, model)
}

/// Live records, counted from the table itself.
fn live_records(hbt: &HashedBoundsTable) -> u64 {
    (0..ROWS).map(|pac| hbt.row_occupancy(pac) as u64).sum()
}

fn counters(telemetry: &Telemetry) -> TelemetrySnapshot {
    telemetry.snapshot()
}

proptest! {
    /// Every `check` is recorded as exactly one lookup and exactly one
    /// of hit / miss, across resizes and partial migrations.
    #[test]
    fn lookups_decompose_into_hits_plus_misses(ops in script()) {
        let telemetry = Telemetry::enabled();
        let (_hbt, _model) = replay(&ops, &telemetry);
        let snap = counters(&telemetry);
        prop_assert_eq!(
            snap.counter(Counter::HbtLookups),
            snap.counter(Counter::HbtHits) + snap.counter(Counter::HbtMisses)
        );
        let checks = ops.iter().filter(|(k, _, _)| *k == 2).count() as u64;
        prop_assert_eq!(snap.counter(Counter::HbtLookups), checks);
    }

    /// Successful inserts minus successful clears equals the number of
    /// live records — the counters only fire on operations that
    /// actually changed the table.
    #[test]
    fn inserts_minus_clears_equals_live_entries(ops in script()) {
        let telemetry = Telemetry::enabled();
        let (hbt, model) = replay(&ops, &telemetry);
        let snap = counters(&telemetry);
        prop_assert_eq!(snap.counter(Counter::HbtInserts), model.inserts);
        prop_assert_eq!(snap.counter(Counter::HbtClears), model.clears);
        prop_assert_eq!(snap.counter(Counter::HbtFailedClears), model.failed_clears);
        prop_assert_eq!(
            snap.counter(Counter::HbtInserts) - snap.counter(Counter::HbtClears),
            live_records(&hbt)
        );
    }

    /// The migration-row counter never exceeds `rows × resizes`, and
    /// lands on it exactly once every in-flight migration drains. Live
    /// accounting survives the migration: records are moved, not
    /// duplicated or dropped.
    #[test]
    fn migration_rows_are_bounded_and_exact_when_drained(ops in script()) {
        let telemetry = Telemetry::enabled();
        let (mut hbt, model) = replay(&ops, &telemetry);
        let mid = counters(&telemetry);
        prop_assert_eq!(mid.counter(Counter::HbtResizes), model.resizes);
        prop_assert!(
            mid.counter(Counter::HbtMigrationRows) <= ROWS * model.resizes,
            "{} rows counted for {} resizes of a {}-row table",
            mid.counter(Counter::HbtMigrationRows),
            model.resizes,
            ROWS
        );

        hbt.finish_migration();
        let done = counters(&telemetry);
        prop_assert_eq!(done.counter(Counter::HbtMigrationRows), ROWS * model.resizes);
        prop_assert!(!hbt.in_migration());
        prop_assert_eq!(
            done.counter(Counter::HbtInserts) - done.counter(Counter::HbtClears),
            live_records(&hbt)
        );
    }

    /// The identities hold identically when every operation runs at
    /// the doubled, post-resize associativity (resize first, drain the
    /// migration, then replay).
    #[test]
    fn identities_hold_at_post_resize_associativity(ops in script()) {
        let telemetry = Telemetry::enabled();
        let mut hbt = table(&telemetry);
        hbt.begin_resize();
        hbt.finish_migration();
        let pre = counters(&telemetry);
        prop_assert_eq!(pre.counter(Counter::HbtMigrationRows), ROWS);

        let mut inserts = 0u64;
        let mut clears = 0u64;
        for &(kind, pac, arg) in &ops {
            let addr = (arg + 1) * 16;
            match kind % 3 {
                0 => {
                    if hbt.store(pac, CompressedBounds::encode(addr, 32)).is_ok() {
                        inserts += 1;
                    }
                }
                1 => {
                    if hbt.clear(pac, addr).is_ok() {
                        clears += 1;
                    }
                }
                _ => {
                    let _ = hbt.check(pac, addr, 0);
                }
            }
        }
        let snap = counters(&telemetry);
        prop_assert_eq!(
            snap.counter(Counter::HbtLookups),
            snap.counter(Counter::HbtHits) + snap.counter(Counter::HbtMisses)
        );
        prop_assert_eq!(snap.counter(Counter::HbtInserts), inserts);
        prop_assert_eq!(
            snap.counter(Counter::HbtInserts) - snap.counter(Counter::HbtClears),
            live_records(&hbt)
        );
        prop_assert_eq!(snap.counter(Counter::HbtClears), clears);
    }
}
