//! The multi-way, PAC-indexed bounds table with gradual resizing.

use crate::compress::CompressedBounds;

/// Number of 8-byte bounds records per 64-byte table way with the
/// Fig. 9 compression enabled.
pub const BOUNDS_PER_WAY: u32 = 8;

/// Configuration of a [`HashedBoundsTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HbtConfig {
    /// PAC width in bits; the table has `2^pac_size` rows.
    pub pac_size: u32,
    /// Associativity the process starts with (Table IV uses 1).
    pub initial_ways: u32,
    /// Upper bound on associativity growth.
    pub max_ways: u32,
    /// Virtual base address of the table region (`BND_BASE`).
    pub base_addr: u64,
    /// Whether the Fig. 9 bounds compression is enabled. Without it a
    /// record occupies 16 bytes, so a 64-byte way holds only four —
    /// the "no compression" arm of the Fig. 15 ablation.
    pub compressed: bool,
}

impl Default for HbtConfig {
    /// The evaluation configuration: 16-bit PACs, initial 1-way
    /// (a 4 MiB table), growth capped at 128 ways, compression on.
    fn default() -> Self {
        Self {
            pac_size: 16,
            initial_ways: 1,
            max_ways: 128,
            base_addr: 0x3800_0000_0000,
            compressed: true,
        }
    }
}

/// Location of a bounds record inside the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HbtSlot {
    /// The way (0-based) within the PAC's row.
    pub way: u32,
    /// The 8-byte slot (0..8) within the way.
    pub slot: u32,
}

/// Result of a successful bounds check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HbtLookup {
    /// Where the matching bounds were found.
    pub slot: HbtSlot,
    /// Number of ways (64-byte lines) touched to find them — the
    /// `Count` the MCQ FSM accumulates.
    pub ways_touched: u32,
    /// The bounds that matched.
    pub bounds: CompressedBounds,
}

/// `bndstr` failure: the PAC's row has no empty slot in any way, so
/// the OS must resize the table (paper §IV-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StoreError {
    /// The row that overflowed.
    pub pac: u64,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bounds store failed: row {:#x} is full", self.pac)
    }
}

impl std::error::Error for StoreError {}

/// `bndclr` failure: no record with a matching lower bound exists,
/// which the OS reports as a double free or a free of an invalid
/// address (paper §IV-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClearError {
    /// The row searched.
    pub pac: u64,
    /// The address whose bounds were not found.
    pub addr: u64,
}

impl std::fmt::Display for ClearError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "bounds clear failed: no bounds for {:#x} in row {:#x}",
            self.addr, self.pac
        )
    }
}

impl std::error::Error for ClearError {}

/// Cumulative operation counters, used by the Fig. 17 analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HbtStats {
    /// `bndstr` operations performed.
    pub stores: u64,
    /// `bndclr` operations performed.
    pub clears: u64,
    /// Bounds checks performed.
    pub checks: u64,
    /// Total 64-byte way lines loaded across all operations.
    pub way_accesses: u64,
    /// Checks that found no valid bounds (safety violations).
    pub failed_checks: u64,
    /// Clears that found nothing (double/invalid frees).
    pub failed_clears: u64,
    /// Gradual resizes performed.
    pub resizes: u64,
}

/// In-flight state of a gradual resize.
#[derive(Debug, Clone)]
struct Migration {
    old_data: Vec<u64>,
    old_ways: u32,
    old_base: u64,
    /// Rows below this index have been migrated to the new table.
    row_ptr: u64,
}

/// The per-process hashed bounds table.
///
/// See the [crate docs](crate) for the design overview. All operations
/// record the 64-byte line addresses they touch; the timing simulator
/// drains them via [`HashedBoundsTable::drain_accesses`] to model the
/// cache traffic of metadata accesses.
#[derive(Debug, Clone)]
pub struct HashedBoundsTable {
    config: HbtConfig,
    ways: u32,
    data: Vec<u64>,
    base: u64,
    generation: u32,
    migration: Option<Migration>,
    stats: HbtStats,
    accesses: Vec<u64>,
    telemetry: aos_util::Telemetry,
}

impl HashedBoundsTable {
    /// Creates an empty table at the configured initial associativity.
    ///
    /// # Panics
    ///
    /// Panics if `initial_ways`/`max_ways` are not powers of two, are
    /// ordered incorrectly, or `pac_size` is outside `11..=32`.
    pub fn new(config: HbtConfig) -> Self {
        assert!(
            (11..=32).contains(&config.pac_size),
            "pac_size must be 11..=32"
        );
        assert!(config.initial_ways.is_power_of_two(), "ways must be 2^k");
        assert!(config.max_ways.is_power_of_two(), "max_ways must be 2^k");
        assert!(config.initial_ways <= config.max_ways);
        let rows = 1u64 << config.pac_size;
        let slots = rows * config.initial_ways as u64 * BOUNDS_PER_WAY as u64;
        Self {
            config,
            ways: config.initial_ways,
            data: vec![0; slots as usize],
            base: config.base_addr,
            generation: 0,
            migration: None,
            stats: HbtStats::default(),
            accesses: Vec::new(),
            telemetry: aos_util::Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry handle: lookups/hits/misses, inserts and
    /// clears (including the MCU's post-commit slot writes), resizes
    /// and migration-row movement are recorded into it, and the
    /// `hbt_ways` gauge tracks the current associativity.
    pub fn with_telemetry(mut self, telemetry: aos_util::Telemetry) -> Self {
        telemetry.gauge_set(aos_util::Gauge::HbtWays, self.ways as u64);
        self.telemetry = telemetry;
        self
    }

    /// Number of rows (`2^pac_size`).
    pub fn rows(&self) -> u64 {
        1u64 << self.config.pac_size
    }

    /// Current associativity.
    pub fn ways(&self) -> u32 {
        self.ways
    }

    /// Current table footprint in bytes.
    pub fn table_bytes(&self) -> u64 {
        self.rows() * self.ways as u64 * 64
    }

    /// Operation counters.
    pub fn stats(&self) -> HbtStats {
        self.stats
    }

    /// Whether a gradual resize is still migrating rows.
    pub fn in_migration(&self) -> bool {
        self.migration.is_some()
    }

    /// Capacity for records with a given PAC before a resize triggers.
    pub fn row_capacity(&self) -> u32 {
        self.ways * self.slots_per_way()
    }

    /// Records per 64-byte way: 8 with compression, 4 without
    /// (uncompressed records are 16 bytes).
    pub fn slots_per_way(&self) -> u32 {
        if self.config.compressed {
            BOUNDS_PER_WAY
        } else {
            BOUNDS_PER_WAY / 2
        }
    }

    /// Drains the 64-byte line addresses touched since the last call —
    /// the metadata traffic a cache model should replay.
    ///
    /// Allocates a fresh `Vec` per call; timing loops that drain every
    /// step should prefer [`HashedBoundsTable::drain_accesses_into`],
    /// which reuses a caller-provided buffer.
    pub fn drain_accesses(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.accesses)
    }

    /// Allocation-free variant of [`HashedBoundsTable::drain_accesses`]:
    /// appends the recorded line addresses to `out` (which the caller
    /// typically clears and reuses each step) and leaves the internal
    /// buffer empty with its capacity intact.
    pub fn drain_accesses_into(&mut self, out: &mut Vec<u64>) {
        out.append(&mut self.accesses);
    }

    /// Number of recorded-but-undrained line addresses — lets timing
    /// loops skip the drain call entirely on quiet steps.
    pub fn pending_accesses(&self) -> usize {
        self.accesses.len()
    }

    /// Discards recorded accesses (for callers that do not model
    /// timing) to keep the buffer from growing unboundedly.
    pub fn discard_accesses(&mut self) {
        self.accesses.clear();
    }

    /// The virtual address of the 64-byte line backing (pac, way),
    /// honouring migration routing (Fig. 10).
    pub fn line_address(&self, pac: u64, way: u32) -> u64 {
        let (base, table_ways) = self.route(pac, way);
        line_addr(base, table_ways, pac, way)
    }

    /// Decides which physical table (base, associativity) backs the
    /// given (pac, way) — the quadrant logic of Fig. 10.
    fn route(&self, pac: u64, way: u32) -> (u64, u32) {
        match &self.migration {
            Some(m) if way < m.old_ways && pac >= m.row_ptr => (m.old_base, m.old_ways),
            _ => (self.base, self.ways),
        }
    }

    fn slot_value(&self, pac: u64, way: u32, slot: u32) -> u64 {
        match &self.migration {
            Some(m) if way < m.old_ways && pac >= m.row_ptr => {
                m.old_data[flat_index(m.old_ways, pac, way, slot)]
            }
            _ => self.data[flat_index(self.ways, pac, way, slot)],
        }
    }

    fn set_slot_value(&mut self, pac: u64, way: u32, slot: u32, value: u64) {
        match &mut self.migration {
            Some(m) if way < m.old_ways && pac >= m.row_ptr => {
                m.old_data[flat_index(m.old_ways, pac, way, slot)] = value;
            }
            _ => self.data[flat_index(self.ways, pac, way, slot)] = value,
        }
    }

    fn touch_line(&mut self, pac: u64, way: u32) {
        let addr = self.line_address(pac, way);
        self.accesses.push(addr);
        self.stats.way_accesses += 1;
    }

    fn assert_pac(&self, pac: u64) {
        assert!(pac < self.rows(), "pac {pac:#x} out of range");
    }

    /// `bndstr`: finds the first empty slot in the PAC's row (scanning
    /// from way 0, as the hardware does) and stores the bounds.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] when every slot is occupied; the OS
    /// handler responds by calling [`HashedBoundsTable::begin_resize`].
    ///
    /// # Panics
    ///
    /// Panics if `pac` exceeds the PAC space or `bounds` is empty.
    pub fn store(&mut self, pac: u64, bounds: CompressedBounds) -> Result<HbtSlot, StoreError> {
        self.assert_pac(pac);
        assert!(!bounds.is_empty(), "cannot store the empty encoding");
        self.stats.stores += 1;
        for way in 0..self.ways {
            self.touch_line(pac, way);
            for slot in 0..self.slots_per_way() {
                if self.slot_value(pac, way, slot) == 0 {
                    self.set_slot_value(pac, way, slot, bounds.to_raw());
                    self.telemetry.count(aos_util::Counter::HbtInserts);
                    return Ok(HbtSlot { way, slot });
                }
            }
        }
        Err(StoreError { pac })
    }

    /// `bndclr`: finds the record whose lower bound matches `addr` and
    /// clears it.
    ///
    /// # Errors
    ///
    /// Returns [`ClearError`] when no record matches — the signal for
    /// double free or free of an invalid pointer.
    pub fn clear(&mut self, pac: u64, addr: u64) -> Result<HbtSlot, ClearError> {
        self.assert_pac(pac);
        self.stats.clears += 1;
        for way in 0..self.ways {
            self.touch_line(pac, way);
            for slot in 0..self.slots_per_way() {
                let raw = self.slot_value(pac, way, slot);
                if CompressedBounds::from_raw(raw).matches_base(addr) {
                    self.set_slot_value(pac, way, slot, 0);
                    self.telemetry.count(aos_util::Counter::HbtClears);
                    return Ok(HbtSlot { way, slot });
                }
            }
        }
        self.stats.failed_clears += 1;
        self.telemetry.count(aos_util::Counter::HbtFailedClears);
        Err(ClearError { pac, addr })
    }

    /// Bounds check for a signed access: scans ways starting from
    /// `start_way` (the BWB's hint, or 0) and returns the first record
    /// containing `addr`.
    ///
    /// Returns `None` when no way holds valid bounds — a memory safety
    /// violation.
    pub fn check(&mut self, pac: u64, addr: u64, start_way: u32) -> Option<HbtLookup> {
        self.assert_pac(pac);
        self.stats.checks += 1;
        self.telemetry.count(aos_util::Counter::HbtLookups);
        for i in 0..self.ways {
            let way = (start_way + i) % self.ways;
            self.touch_line(pac, way);
            for slot in 0..self.slots_per_way() {
                let bounds = CompressedBounds::from_raw(self.slot_value(pac, way, slot));
                if bounds.check(addr) {
                    self.telemetry.count(aos_util::Counter::HbtHits);
                    return Some(HbtLookup {
                        slot: HbtSlot { way, slot },
                        ways_touched: i + 1,
                        bounds,
                    });
                }
            }
        }
        self.stats.failed_checks += 1;
        self.telemetry.count(aos_util::Counter::HbtMisses);
        None
    }

    /// Starts a gradual resize: associativity doubles, and subsequent
    /// accesses route between the old and new tables by the Fig. 10
    /// quadrants until [`HashedBoundsTable::step_migration`] finishes.
    ///
    /// If a previous migration is still in flight it is completed
    /// synchronously first (the paper never observed this case; see
    /// DESIGN.md).
    ///
    /// # Panics
    ///
    /// Panics if the table is already at `max_ways`. Callers on an
    /// untrusted-input path (a workload with pathological PAC
    /// collisions) use [`HashedBoundsTable::try_begin_resize`].
    pub fn begin_resize(&mut self) {
        self.try_begin_resize()
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Whether another doubling still fits under `max_ways`.
    pub fn can_resize(&self) -> bool {
        self.ways * 2 <= self.config.max_ways
    }

    /// Fallible [`HashedBoundsTable::begin_resize`].
    ///
    /// # Errors
    ///
    /// Returns [`aos_util::AosError::ResourceExhausted`] when the
    /// table is already at `max_ways`; the table is left untouched
    /// (an in-flight migration is *not* completed) so the caller can
    /// degrade — drop the store, count a violation — instead of
    /// aborting the whole run.
    pub fn try_begin_resize(&mut self) -> Result<(), aos_util::AosError> {
        if !self.can_resize() {
            return Err(aos_util::AosError::exhausted(
                "HBT associativity",
                format!(
                    "HBT exceeded max associativity {}",
                    self.config.max_ways
                ),
            ));
        }
        if self.migration.is_some() {
            self.finish_migration();
        }
        let new_ways = self.ways * 2;
        let rows = self.rows();
        let new_slots = rows * new_ways as u64 * BOUNDS_PER_WAY as u64;
        // Each generation gets a disjoint address region so the old and
        // new tables can coexist during migration.
        let region_stride = rows * self.config.max_ways as u64 * 64;
        let new_base = self.config.base_addr + (self.generation as u64 + 1) * region_stride;
        let old_data = std::mem::replace(&mut self.data, vec![0; new_slots as usize]);
        self.migration = Some(Migration {
            old_data,
            old_ways: self.ways,
            old_base: self.base,
            row_ptr: 0,
        });
        self.ways = new_ways;
        self.base = new_base;
        self.generation += 1;
        self.stats.resizes += 1;
        self.telemetry.count(aos_util::Counter::HbtResizes);
        self.telemetry
            .gauge_set(aos_util::Gauge::HbtWays, self.ways as u64);
        Ok(())
    }

    /// Migrates up to `rows` rows from the old table into the new one,
    /// returning how many were actually moved. The table manager in
    /// hardware does this in the background; the simulator calls it a
    /// few rows per cycle.
    pub fn step_migration(&mut self, rows: u64) -> u64 {
        let Some(m) = &mut self.migration else {
            return 0;
        };
        let total_rows = 1u64 << self.config.pac_size;
        let end = (m.row_ptr + rows).min(total_rows);
        let moved = end - m.row_ptr;
        let old_ways = m.old_ways;
        for pac in m.row_ptr..end {
            for way in 0..old_ways {
                for slot in 0..BOUNDS_PER_WAY {
                    let v = m.old_data[flat_index(old_ways, pac, way, slot)];
                    if v != 0 {
                        self.data[flat_index(self.ways, pac, way, slot)] = v;
                    }
                }
            }
        }
        let m = self.migration.as_mut().expect("migration checked above");
        m.row_ptr = end;
        if end == total_rows {
            self.migration = None;
        }
        self.telemetry.add(aos_util::Counter::HbtMigrationRows, moved);
        moved
    }

    /// Completes any in-flight migration.
    pub fn finish_migration(&mut self) {
        self.step_migration(self.rows());
    }

    /// Raw read of one way's eight bounds records, without recording
    /// an access — the memory check unit drives its own cache traffic
    /// and statistics when it steps the FSMs way by way.
    pub fn peek_way(&self, pac: u64, way: u32) -> [CompressedBounds; BOUNDS_PER_WAY as usize] {
        self.assert_pac(pac);
        assert!(way < self.ways, "way {way} out of range");
        // Route once for the whole line — the eight slots of a way are
        // contiguous, so this is one migration decision and one index
        // computation instead of eight of each.
        let (data, ways): (&[u64], u32) = match &self.migration {
            Some(m) if way < m.old_ways && pac >= m.row_ptr => (&m.old_data, m.old_ways),
            _ => (&self.data, self.ways),
        };
        let base = flat_index(ways, pac, way, 0);
        let mut out = [CompressedBounds::EMPTY; BOUNDS_PER_WAY as usize];
        for (slot, rec) in out.iter_mut().enumerate() {
            *rec = CompressedBounds::from_raw(data[base + slot]);
        }
        out
    }

    /// Raw write of one slot (the `bndstr`/`bndclr` store the MCU
    /// sends after commit). Writing [`CompressedBounds::EMPTY`] clears
    /// the slot.
    ///
    /// # Panics
    ///
    /// Panics if `pac`, `way` or `slot` are out of range.
    pub fn poke_slot(&mut self, pac: u64, way: u32, slot: u32, bounds: CompressedBounds) {
        self.assert_pac(pac);
        assert!(way < self.ways, "way {way} out of range");
        assert!(slot < BOUNDS_PER_WAY, "slot {slot} out of range");
        // The MCU's post-commit slot writes bypass store()/clear(), so
        // record the insert/clear here to keep the telemetry ledger
        // complete on the timing path.
        self.telemetry.count(if bounds.is_empty() {
            aos_util::Counter::HbtClears
        } else {
            aos_util::Counter::HbtInserts
        });
        self.set_slot_value(pac, way, slot, bounds.to_raw());
    }

    /// Number of live (non-empty) records in a row, across both tables
    /// if migrating.
    pub fn row_occupancy(&self, pac: u64) -> u32 {
        self.assert_pac(pac);
        (0..self.ways)
            .map(|way| {
                (0..BOUNDS_PER_WAY)
                    .filter(|&slot| self.slot_value(pac, way, slot) != 0)
                    .count() as u32
            })
            .sum()
    }
}

/// Flat index of a slot inside a table with `table_ways` ways.
fn flat_index(table_ways: u32, pac: u64, way: u32, slot: u32) -> usize {
    ((pac * table_ways as u64 + way as u64) * BOUNDS_PER_WAY as u64 + slot as u64) as usize
}

/// Eq. 1–2: the 64-byte-aligned address of one table way.
fn line_addr(base: u64, table_ways: u32, pac: u64, way: u32) -> u64 {
    let assoc_shift = table_ways.trailing_zeros() + 6;
    base + (pac << assoc_shift) + ((way as u64) << 6)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_table() -> HashedBoundsTable {
        HashedBoundsTable::new(HbtConfig {
            pac_size: 11,
            initial_ways: 1,
            max_ways: 8,
            base_addr: 0x1000_0000,
            compressed: true,
        })
    }

    fn bounds(base: u64, size: u64) -> CompressedBounds {
        CompressedBounds::encode(base, size)
    }

    #[test]
    fn default_matches_paper_initial_size() {
        let t = HashedBoundsTable::new(HbtConfig::default());
        assert_eq!(t.table_bytes(), 4 << 20, "initial 1-way table is 4 MiB");
        assert_eq!(t.rows(), 65536);
        assert_eq!(t.row_capacity(), 8);
    }

    #[test]
    fn store_then_check_roundtrip() {
        let mut t = small_table();
        t.store(5, bounds(0x4000, 128)).unwrap();
        let hit = t.check(5, 0x4040, 0).unwrap();
        assert_eq!(hit.slot, HbtSlot { way: 0, slot: 0 });
        assert_eq!(hit.ways_touched, 1);
        assert!(t.check(5, 0x4080, 0).is_none(), "past the end");
        assert!(t.check(6, 0x4040, 0).is_none(), "different PAC row");
    }

    #[test]
    fn clear_then_check_fails() {
        let mut t = small_table();
        t.store(9, bounds(0x8000, 64)).unwrap();
        t.clear(9, 0x8000).unwrap();
        assert!(t.check(9, 0x8010, 0).is_none(), "temporal safety");
        assert_eq!(t.stats().failed_checks, 1);
    }

    #[test]
    fn clear_of_missing_bounds_is_reported() {
        let mut t = small_table();
        let err = t.clear(3, 0x9000).unwrap_err();
        assert_eq!(err, ClearError { pac: 3, addr: 0x9000 });
        assert_eq!(t.stats().failed_clears, 1);
    }

    #[test]
    fn colliding_pacs_share_a_row() {
        let mut t = small_table();
        for i in 0..8u64 {
            t.store(7, bounds(0x1_0000 + i * 0x100, 64)).unwrap();
        }
        // All eight in way 0; the row is now full.
        assert_eq!(t.row_occupancy(7), 8);
        let err = t.store(7, bounds(0x9_0000, 64)).unwrap_err();
        assert_eq!(err.pac, 7);
        // Each collided record remains individually findable.
        for i in 0..8u64 {
            assert!(t.check(7, 0x1_0000 + i * 0x100 + 8, 0).is_some());
        }
    }

    #[test]
    fn resize_doubles_ways_and_preserves_records() {
        let mut t = small_table();
        for i in 0..8u64 {
            t.store(7, bounds(0x1_0000 + i * 0x100, 64)).unwrap();
        }
        assert!(t.store(7, bounds(0x9_0000, 64)).is_err());
        t.begin_resize();
        assert_eq!(t.ways(), 2);
        assert!(t.in_migration());
        // The overflow store now succeeds (way 1 lives in the new table).
        let slot = t.store(7, bounds(0x9_0000, 64)).unwrap();
        assert_eq!(slot.way, 1);
        // Old records still reachable through the routing.
        for i in 0..8u64 {
            assert!(t.check(7, 0x1_0000 + i * 0x100, 0).is_some());
        }
        // Finish migration; everything still reachable.
        t.finish_migration();
        assert!(!t.in_migration());
        for i in 0..8u64 {
            assert!(t.check(7, 0x1_0000 + i * 0x100, 0).is_some());
        }
        assert!(t.check(7, 0x9_0000, 0).is_some());
        assert_eq!(t.stats().resizes, 1);
    }

    #[test]
    fn migration_steps_move_rows_incrementally() {
        let mut t = small_table();
        t.store(0, bounds(0x4000, 16)).unwrap();
        t.store(2000, bounds(0x5000, 16)).unwrap();
        t.begin_resize();
        assert_eq!(t.step_migration(1024), 1024);
        assert!(t.in_migration());
        // Row 0 migrated, row 2000 not yet; both must stay visible.
        assert!(t.check(0, 0x4000, 0).is_some());
        assert!(t.check(2000, 0x5000, 0).is_some());
        assert_eq!(t.step_migration(10_000), 2048 - 1024);
        assert!(!t.in_migration());
        assert!(t.check(2000, 0x5000, 0).is_some());
    }

    #[test]
    fn stores_during_migration_survive_completion() {
        let mut t = small_table();
        t.begin_resize();
        // Unmigrated row, way 0 → routed to the old table.
        t.store(1500, bounds(0x6000, 32)).unwrap();
        t.finish_migration();
        assert!(t.check(1500, 0x6000, 0).is_some());
    }

    #[test]
    fn bwb_hint_reduces_ways_touched() {
        let mut t = small_table();
        // Fill way 0 with other chunks, target in way 1.
        for i in 0..8u64 {
            t.store(7, bounds(0x1_0000 + i * 0x100, 64)).unwrap();
        }
        t.begin_resize();
        t.finish_migration();
        t.store(7, bounds(0x9_0000, 64)).unwrap();
        let cold = t.check(7, 0x9_0000, 0).unwrap();
        assert_eq!(cold.ways_touched, 2);
        let hinted = t.check(7, 0x9_0000, cold.slot.way).unwrap();
        assert_eq!(hinted.ways_touched, 1, "hint lands on the right way");
    }

    #[test]
    fn line_addresses_are_64b_aligned_and_distinct() {
        let mut t = small_table();
        for i in 0..8u64 {
            t.store(3, bounds(0x2_0000 + i * 0x40, 64)).unwrap();
        }
        t.begin_resize();
        let a0 = t.line_address(3, 0);
        let a1 = t.line_address(3, 1);
        assert_eq!(a0 % 64, 0);
        assert_eq!(a1 % 64, 0);
        assert_ne!(a0, a1);
        // Way 0 routes to the old table, way 1 to the new one.
        assert!(a0 < 0x1000_0000 + t.rows() * 8 * 64);
        assert!(a1 >= 0x1000_0000 + t.rows() * 8 * 64);
    }

    #[test]
    fn accesses_are_recorded_and_drainable() {
        let mut t = small_table();
        t.store(1, bounds(0x4000, 16)).unwrap();
        t.check(1, 0x4000, 0).unwrap();
        let acc = t.drain_accesses();
        assert_eq!(acc.len(), 2, "one line per store, one per check");
        assert!(t.drain_accesses().is_empty());
        t.check(1, 0x4000, 0).unwrap();
        t.discard_accesses();
        assert!(t.drain_accesses().is_empty());
    }

    #[test]
    fn drain_into_reuses_buffer_and_matches_drain() {
        let mut t = small_table();
        t.store(1, bounds(0x4000, 16)).unwrap();
        t.check(1, 0x4000, 0).unwrap();
        let expected = t.clone().drain_accesses();

        let mut out = Vec::with_capacity(8);
        assert_eq!(t.pending_accesses(), expected.len());
        t.drain_accesses_into(&mut out);
        assert_eq!(out, expected);
        assert_eq!(t.pending_accesses(), 0);

        // Repeated drains append into the same buffer without losing
        // what the caller already collected, and a cleared buffer
        // keeps its capacity.
        t.check(1, 0x4000, 0).unwrap();
        t.drain_accesses_into(&mut out);
        assert_eq!(out.len(), expected.len() + 1);
        let capacity = out.capacity();
        out.clear();
        t.drain_accesses_into(&mut out);
        assert!(out.is_empty());
        assert_eq!(out.capacity(), capacity);
    }

    #[test]
    fn stats_accumulate() {
        let mut t = small_table();
        t.store(1, bounds(0x4000, 16)).unwrap();
        t.check(1, 0x4000, 0).unwrap();
        t.check(1, 0x9000, 0);
        t.clear(1, 0x4000).unwrap();
        let s = t.stats();
        assert_eq!(s.stores, 1);
        assert_eq!(s.checks, 2);
        assert_eq!(s.clears, 1);
        assert_eq!(s.failed_checks, 1);
        assert!(s.way_accesses >= 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_pac_rejected() {
        let mut t = small_table();
        t.store(1 << 11, bounds(0x4000, 16)).ok();
    }

    #[test]
    fn uncompressed_mode_halves_row_capacity() {
        let mut t = HashedBoundsTable::new(HbtConfig {
            pac_size: 11,
            initial_ways: 1,
            max_ways: 8,
            base_addr: 0x1000_0000,
            compressed: false,
        });
        assert_eq!(t.slots_per_way(), 4, "16-byte records, 4 per 64B way");
        assert_eq!(t.row_capacity(), 4);
        for i in 0..4u64 {
            t.store(9, bounds(0x1_0000 + i * 0x100, 64)).unwrap();
        }
        // The fifth record overflows a row that holds 8 when
        // compression is on.
        assert!(t.store(9, bounds(0x9_0000, 64)).is_err());
        // Everything stored remains findable.
        for i in 0..4u64 {
            assert!(t.check(9, 0x1_0000 + i * 0x100 + 8, 0).is_some());
        }
    }

    #[test]
    fn uncompressed_mode_survives_resize() {
        let mut t = HashedBoundsTable::new(HbtConfig {
            pac_size: 11,
            initial_ways: 1,
            max_ways: 8,
            base_addr: 0x1000_0000,
            compressed: false,
        });
        for i in 0..4u64 {
            t.store(9, bounds(0x1_0000 + i * 0x100, 64)).unwrap();
        }
        t.begin_resize();
        t.store(9, bounds(0x9_0000, 64)).unwrap();
        t.finish_migration();
        assert_eq!(t.row_capacity(), 8, "2 ways x 4 slots");
        for i in 0..4u64 {
            assert!(t.check(9, 0x1_0000 + i * 0x100, 0).is_some());
        }
        assert!(t.check(9, 0x9_0000, 0).is_some());
    }

    #[test]
    #[should_panic(expected = "max associativity")]
    fn resize_beyond_max_panics() {
        let mut t = HashedBoundsTable::new(HbtConfig {
            pac_size: 11,
            initial_ways: 1,
            max_ways: 2,
            base_addr: 0x1000_0000,
            compressed: true,
        });
        t.begin_resize();
        t.begin_resize();
    }

    #[test]
    fn try_resize_degrades_instead_of_panicking() {
        let mut t = HashedBoundsTable::new(HbtConfig {
            pac_size: 11,
            initial_ways: 1,
            max_ways: 2,
            base_addr: 0x1000_0000,
            compressed: true,
        });
        assert!(t.can_resize());
        t.try_begin_resize().unwrap();
        t.finish_migration();
        assert_eq!(t.ways(), 2);
        assert!(!t.can_resize());
        let err = t.try_begin_resize().unwrap_err();
        assert!(err.to_string().contains("max associativity 2"), "{err}");
        // The failed attempt left the table usable at its current size.
        assert_eq!(t.ways(), 2);
        t.store(9, CompressedBounds::encode(0x9_0000, 64)).unwrap();
        assert!(t.check(9, 0x9_0000, 0).is_some());
    }
}
