//! The 8-byte bounds compression of paper Fig. 9.
//!
//! `malloc` returns 16-byte-aligned pointers and takes a 32-bit size,
//! so a bounds record can drop the lower bound's low 4 bits and its
//! bits above 32: 29 bits of partial lower bound plus the 32-bit size
//! fit in one 8-byte word, halving the metadata footprint of a naive
//! (lower, upper) pair and letting one 64-byte cache line carry eight
//! bounds for parallel checking.
//!
//! The three bits Fig. 9 leaves reserved (`[63:61]`) carry a CRC-3
//! integrity code here (generator `x³+x+1`, primitive) over the 61
//! payload bits. A record whose CRC does not verify **fails closed**:
//! [`CompressedBounds::check`] and [`CompressedBounds::matches_base`]
//! treat it as matching nothing, so a bit-flipped table entry surfaces
//! as a bounds-check/clear failure (the AOS exception path) rather
//! than silently validating a rogue access. CRC-3 detects every
//! single-bit flip and all double-bit flips except pairs of bits in
//! the same residue class mod 7 (because `x` has order 7 modulo the
//! generator) — see DESIGN.md "Fault model & error taxonomy".

/// Why a (base, size) pair cannot be encoded as [`CompressedBounds`].
///
/// Raised by [`CompressedBounds::try_encode`] when the input violates
/// one of the `malloc` properties the compression scheme relies on —
/// the typed form of what a crafted or replayed trace can get wrong.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MalformedBounds {
    /// The rejected lower bound.
    pub base: u64,
    /// The rejected size.
    pub size: u64,
    /// Which encoding property failed.
    pub reason: &'static str,
}

impl std::fmt::Display for MalformedBounds {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cannot encode bounds base={:#x} size={}: {}",
            self.base, self.size, self.reason
        )
    }
}

impl std::error::Error for MalformedBounds {}

/// One compressed bounds record.
///
/// Bit layout (Fig. 9a): `[63:61]` CRC-3 over the payload (reserved
/// in the paper), `[60:32]` = lower-bound bits `[32:4]`, `[31:0]` =
/// size. The all-zero word is reserved as the *empty* encoding
/// (`bndclr` writes it), which is unambiguous because a real record
/// always has a nonzero size — and self-consistent, since the CRC of
/// zero is zero.
///
/// # Examples
///
/// ```
/// use aos_hbt::CompressedBounds;
/// let b = CompressedBounds::encode(0x4000_0010, 64);
/// assert!(b.check(0x4000_0010));
/// assert!(b.check(0x4000_004F));
/// assert!(!b.check(0x4000_0050));
/// assert!(!b.check(0x4000_000F));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CompressedBounds(u64);

impl CompressedBounds {
    /// The empty (cleared) encoding.
    pub const EMPTY: CompressedBounds = CompressedBounds(0);

    /// Encodes the bounds of a chunk at `base` spanning `size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not 16-byte aligned or `size` is zero or
    /// does not fit 32 bits — the `malloc` properties the scheme
    /// relies on. Untrusted inputs (decoded traces, injected faults)
    /// go through [`CompressedBounds::try_encode`] instead.
    pub fn encode(base: u64, size: u64) -> Self {
        match Self::try_encode(base, size) {
            Ok(b) => b,
            Err(e) => panic!("{}", e.reason),
        }
    }

    /// Fallible [`CompressedBounds::encode`] for untrusted inputs.
    ///
    /// # Errors
    ///
    /// Returns [`MalformedBounds`] naming the violated property when
    /// `base` is misaligned or `size` is zero or wider than 32 bits.
    pub fn try_encode(base: u64, size: u64) -> Result<Self, MalformedBounds> {
        let reason = if base % 16 != 0 {
            Some("base must be 16-byte aligned")
        } else if size == 0 {
            Some("size must be nonzero")
        } else if size > u32::MAX as u64 {
            Some("size must fit 32 bits")
        } else {
            None
        };
        if let Some(reason) = reason {
            return Err(MalformedBounds { base, size, reason });
        }
        let low_partial = (base >> 4) & ((1 << 29) - 1);
        let payload = (low_partial << 32) | size;
        Ok(Self((crc3(payload) << PAYLOAD_BITS) | payload))
    }

    /// Reconstructs a record from its raw 8-byte representation (e.g.
    /// read back out of the table memory).
    pub fn from_raw(raw: u64) -> Self {
        Self(raw)
    }

    /// The raw 8-byte representation stored in the HBT.
    pub fn to_raw(self) -> u64 {
        self.0
    }

    /// Returns `true` for the cleared encoding.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Verifies the CRC-3 in bits `[63:61]` against the 61-bit
    /// payload. Every record produced by `encode` verifies; a record
    /// read back from table memory after a bit flip (almost) never
    /// does — see the module docs for the exact guarantee.
    pub fn integrity_ok(self) -> bool {
        (self.0 >> PAYLOAD_BITS) == crc3(self.0 & PAYLOAD_MASK)
    }

    /// The decompressed 33-bit-domain lower bound (`dLowBnd`,
    /// Fig. 9b).
    pub fn lower(self) -> u64 {
        ((self.0 >> 32) & ((1 << 29) - 1)) << 4
    }

    /// The decompressed upper bound (`dUppBnd` = lower + size,
    /// exclusive).
    pub fn upper(self) -> u64 {
        self.lower() + self.size()
    }

    /// The stored 32-bit size.
    pub fn size(self) -> u64 {
        self.0 & 0xFFFF_FFFF
    }

    /// The truncated address compared against the decompressed bounds:
    /// `tAddr = C ‖ addr[32:0]` with the carry-compensation bit
    /// `C = LowBnd[32] & !addr[32]` (Fig. 9b).
    fn truncated_addr(self, addr: u64) -> u64 {
        let low_bit32 = (self.0 >> 60) & 1; // LowBnd[32] sits at raw bit 60.
        let addr_bit32 = (addr >> 32) & 1;
        let c = low_bit32 & (1 ^ addr_bit32);
        (c << 33) | (addr & 0x1_FFFF_FFFF)
    }

    /// Bounds check: is `addr` inside `[lower, upper)`?
    ///
    /// Only the low 33 address bits participate (plus the carry
    /// compensation), so addresses exactly 8 GiB apart with the same
    /// PAC would false-positively pass — the aliasing the paper argues
    /// is unexploitable (§V-D, §VII-E).
    ///
    /// A record whose CRC does not verify fails closed: it matches no
    /// address, so the enclosing access raises the bounds-check
    /// exception instead of trusting corrupted bounds.
    pub fn check(self, addr: u64) -> bool {
        if self.is_empty() || !self.integrity_ok() {
            return false;
        }
        let t = self.truncated_addr(addr);
        self.lower() <= t && t < self.upper()
    }

    /// Returns `true` if `addr` is exactly this record's (partial)
    /// lower bound — the occupancy test `bndclr` performs before
    /// clearing (paper §V-A2). Fails closed on a bad CRC, like
    /// [`CompressedBounds::check`].
    pub fn matches_base(self, addr: u64) -> bool {
        !self.is_empty()
            && self.integrity_ok()
            && ((addr >> 4) & ((1 << 29) - 1)) == (self.0 >> 32) & ((1 << 29) - 1)
    }
}

/// Payload width: everything below the CRC field.
const PAYLOAD_BITS: u64 = 61;
/// Mask selecting the payload bits `[60:0]`.
const PAYLOAD_MASK: u64 = (1 << PAYLOAD_BITS) - 1;

/// CRC-3 of the 61-bit payload, generator `g(x) = x³ + x + 1`
/// (primitive, so `x` has multiplicative order 7 modulo `g`).
///
/// Computed as `payload(x) mod g` by residue-class folding rather
/// than a bit-serial shift: payload bit `i` contributes `x^i mod g`,
/// which depends only on `i mod 7`, so the payload folds into seven
/// parity bits that are combined with the seven precomputed residues
/// — O(7) popcounts instead of a 61-step loop, cheap enough for the
/// MCU check path.
fn crc3(payload: u64) -> u64 {
    // RESIDUE[c] = x^c mod g: 1, x, x², x+1, x²+x, x²+x+1, x²+1.
    const RESIDUE: [u64; 7] = [0b001, 0b010, 0b100, 0b011, 0b110, 0b111, 0b101];
    const fn class_mask(c: u64) -> u64 {
        let mut mask = 0u64;
        let mut i = 0;
        while i < PAYLOAD_BITS {
            if i % 7 == c {
                mask |= 1 << i;
            }
            i += 1;
        }
        mask
    }
    const MASKS: [u64; 7] = [
        class_mask(0),
        class_mask(1),
        class_mask(2),
        class_mask(3),
        class_mask(4),
        class_mask(5),
        class_mask(6),
    ];
    let mut crc = 0;
    let mut c = 0;
    while c < 7 {
        crc ^= RESIDUE[c] * (u64::from((payload & MASKS[c]).count_ones()) & 1);
        c += 1;
    }
    crc
}

impl std::fmt::Display for CompressedBounds {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_empty() {
            write!(f, "[empty]")
        } else if !self.integrity_ok() {
            write!(f, "[corrupt raw={:#018x}]", self.0)
        } else {
            write!(f, "[{:#x}, {:#x})", self.lower(), self.upper())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_raw() {
        let b = CompressedBounds::encode(0x1234_5670, 4096);
        assert_eq!(CompressedBounds::from_raw(b.to_raw()), b);
    }

    #[test]
    fn empty_is_all_zero_and_never_matches() {
        assert!(CompressedBounds::EMPTY.is_empty());
        assert_eq!(CompressedBounds::EMPTY.to_raw(), 0);
        assert!(!CompressedBounds::EMPTY.check(0));
        assert!(!CompressedBounds::EMPTY.matches_base(0));
    }

    #[test]
    fn check_is_half_open() {
        let b = CompressedBounds::encode(0x8000, 256);
        assert!(b.check(0x8000));
        assert!(b.check(0x80FF));
        assert!(!b.check(0x8100));
        assert!(!b.check(0x7FFF));
    }

    #[test]
    fn single_granule_chunk() {
        let b = CompressedBounds::encode(0x10, 16);
        assert!(b.check(0x10));
        assert!(b.check(0x1F));
        assert!(!b.check(0x20));
        assert!(!b.check(0x00));
    }

    #[test]
    fn carry_compensation_across_8gib_boundary() {
        // Chunk starting just below 2^33 and spilling past it: the
        // upper part of the address loses bit 33, and the C bit must
        // compensate.
        let base = (1u64 << 33) - 64;
        let b = CompressedBounds::encode(base, 128);
        assert!(b.check(base));
        assert!(b.check(base + 64), "address past the 2^33 wrap");
        assert!(b.check(base + 127));
        assert!(!b.check(base + 128));
    }

    #[test]
    fn aliasing_at_8gib_multiples_is_the_documented_false_positive() {
        let b = CompressedBounds::encode(0x4000_0010, 64);
        // Same low 33 bits, 8 GiB away: the check cannot distinguish.
        let alias = 0x4000_0010 + (1u64 << 34);
        assert!(b.check(alias + 8), "documented aliasing limitation");
    }

    #[test]
    fn matches_base_exact_only() {
        let b = CompressedBounds::encode(0xA000, 256);
        assert!(b.matches_base(0xA000));
        assert!(!b.matches_base(0xA010));
        assert!(!b.matches_base(0x9FF0));
    }

    #[test]
    fn size_and_bounds_accessors() {
        let b = CompressedBounds::encode(0x20_0000, 1000);
        assert_eq!(b.size(), 1000);
        assert_eq!(b.lower(), 0x20_0000);
        assert_eq!(b.upper(), 0x20_0000 + 1000);
    }

    #[test]
    fn max_size_fits() {
        let b = CompressedBounds::encode(0x10, u32::MAX as u64);
        assert_eq!(b.size(), u32::MAX as u64);
        assert!(b.check(0x10));
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn misaligned_base_rejected() {
        CompressedBounds::encode(0x11, 16);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_size_rejected() {
        CompressedBounds::encode(0x10, 0);
    }

    #[test]
    #[should_panic(expected = "32 bits")]
    fn oversized_rejected() {
        CompressedBounds::encode(0x10, 1 << 33);
    }

    #[test]
    fn display_shows_range() {
        let b = CompressedBounds::encode(0x100, 16);
        assert_eq!(b.to_string(), "[0x100, 0x110)");
        assert_eq!(CompressedBounds::EMPTY.to_string(), "[empty]");
    }

    /// Bit-serial long division, the textbook reference the folded
    /// implementation must agree with.
    fn crc3_reference(payload: u64) -> u64 {
        let mut rem = 0u64;
        for i in (0..61).rev() {
            rem = (rem << 1) | ((payload >> i) & 1);
            if rem & 0b1000 != 0 {
                rem ^= 0b1011;
            }
        }
        rem & 0b111
    }

    #[test]
    fn folded_crc_matches_bit_serial_reference() {
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        for _ in 0..10_000 {
            // SplitMix64-style scramble for coverage of the domain.
            x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9) ^ (x >> 27);
            let payload = x & ((1 << 61) - 1);
            assert_eq!(crc3(payload), crc3_reference(payload), "payload={payload:#x}");
        }
        assert_eq!(crc3(0), 0, "EMPTY must stay self-consistent");
    }

    #[test]
    fn encoded_records_verify_and_empty_is_consistent() {
        assert!(CompressedBounds::encode(0x4000_0010, 64).integrity_ok());
        assert!(CompressedBounds::encode(0x10, u32::MAX as u64).integrity_ok());
        assert!(CompressedBounds::EMPTY.integrity_ok());
    }

    #[test]
    fn try_encode_rejects_what_encode_panics_on() {
        assert!(CompressedBounds::try_encode(0x4000_0010, 64).is_ok());
        let e = CompressedBounds::try_encode(0x11, 16).unwrap_err();
        assert!(e.reason.contains("aligned"), "{e}");
        let e = CompressedBounds::try_encode(0x10, 0).unwrap_err();
        assert!(e.reason.contains("nonzero"), "{e}");
        let e = CompressedBounds::try_encode(0x10, 1 << 33).unwrap_err();
        assert!(e.reason.contains("32 bits"), "{e}");
        assert!(e.to_string().contains("cannot encode bounds"));
    }

    #[test]
    fn single_bit_flips_always_fail_closed() {
        let b = CompressedBounds::encode(0x4000_0010, 64);
        for bit in 0..64 {
            let flipped = CompressedBounds::from_raw(b.to_raw() ^ (1 << bit));
            assert!(!flipped.integrity_ok(), "bit {bit} escaped the CRC");
            // Fail-closed: the corrupted record validates nothing, not
            // even the formerly in-bounds base address.
            assert!(!flipped.check(0x4000_0010), "bit {bit}");
            assert!(!flipped.check(0x4000_004F), "bit {bit}");
            assert!(!flipped.matches_base(0x4000_0010), "bit {bit}");
        }
    }

    #[test]
    fn corrupt_record_displays_raw() {
        let b = CompressedBounds::encode(0x100, 16);
        let corrupt = CompressedBounds::from_raw(b.to_raw() ^ 1);
        assert!(corrupt.to_string().starts_with("[corrupt raw="));
    }
}
