//! The 8-byte bounds compression of paper Fig. 9.
//!
//! `malloc` returns 16-byte-aligned pointers and takes a 32-bit size,
//! so a bounds record can drop the lower bound's low 4 bits and its
//! bits above 32: 29 bits of partial lower bound plus the 32-bit size
//! fit in one 8-byte word, halving the metadata footprint of a naive
//! (lower, upper) pair and letting one 64-byte cache line carry eight
//! bounds for parallel checking.

/// One compressed bounds record.
///
/// Bit layout (Fig. 9a): `[63:61]` reserved, `[60:32]` = lower-bound
/// bits `[32:4]`, `[31:0]` = size. The all-zero word is reserved as
/// the *empty* encoding (`bndclr` writes it), which is unambiguous
/// because a real record always has a nonzero size.
///
/// # Examples
///
/// ```
/// use aos_hbt::CompressedBounds;
/// let b = CompressedBounds::encode(0x4000_0010, 64);
/// assert!(b.check(0x4000_0010));
/// assert!(b.check(0x4000_004F));
/// assert!(!b.check(0x4000_0050));
/// assert!(!b.check(0x4000_000F));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CompressedBounds(u64);

impl CompressedBounds {
    /// The empty (cleared) encoding.
    pub const EMPTY: CompressedBounds = CompressedBounds(0);

    /// Encodes the bounds of a chunk at `base` spanning `size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not 16-byte aligned or `size` is zero or
    /// does not fit 32 bits — the two `malloc` properties the scheme
    /// relies on.
    pub fn encode(base: u64, size: u64) -> Self {
        assert_eq!(base % 16, 0, "base must be 16-byte aligned");
        assert!(size > 0, "size must be nonzero");
        assert!(size <= u32::MAX as u64, "size must fit 32 bits");
        let low_partial = (base >> 4) & ((1 << 29) - 1);
        Self((low_partial << 32) | size)
    }

    /// Reconstructs a record from its raw 8-byte representation (e.g.
    /// read back out of the table memory).
    pub fn from_raw(raw: u64) -> Self {
        Self(raw)
    }

    /// The raw 8-byte representation stored in the HBT.
    pub fn to_raw(self) -> u64 {
        self.0
    }

    /// Returns `true` for the cleared encoding.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The decompressed 33-bit-domain lower bound (`dLowBnd`,
    /// Fig. 9b).
    pub fn lower(self) -> u64 {
        (self.0 >> 32) << 4
    }

    /// The decompressed upper bound (`dUppBnd` = lower + size,
    /// exclusive).
    pub fn upper(self) -> u64 {
        self.lower() + self.size()
    }

    /// The stored 32-bit size.
    pub fn size(self) -> u64 {
        self.0 & 0xFFFF_FFFF
    }

    /// The truncated address compared against the decompressed bounds:
    /// `tAddr = C ‖ addr[32:0]` with the carry-compensation bit
    /// `C = LowBnd[32] & !addr[32]` (Fig. 9b).
    fn truncated_addr(self, addr: u64) -> u64 {
        let low_bit32 = (self.0 >> 60) & 1; // LowBnd[32] sits at raw bit 60.
        let addr_bit32 = (addr >> 32) & 1;
        let c = low_bit32 & (1 ^ addr_bit32);
        (c << 33) | (addr & 0x1_FFFF_FFFF)
    }

    /// Bounds check: is `addr` inside `[lower, upper)`?
    ///
    /// Only the low 33 address bits participate (plus the carry
    /// compensation), so addresses exactly 8 GiB apart with the same
    /// PAC would false-positively pass — the aliasing the paper argues
    /// is unexploitable (§V-D, §VII-E).
    pub fn check(self, addr: u64) -> bool {
        if self.is_empty() {
            return false;
        }
        let t = self.truncated_addr(addr);
        self.lower() <= t && t < self.upper()
    }

    /// Returns `true` if `addr` is exactly this record's (partial)
    /// lower bound — the occupancy test `bndclr` performs before
    /// clearing (paper §V-A2).
    pub fn matches_base(self, addr: u64) -> bool {
        !self.is_empty() && ((addr >> 4) & ((1 << 29) - 1)) == (self.0 >> 32) & ((1 << 29) - 1)
    }
}

impl std::fmt::Display for CompressedBounds {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_empty() {
            write!(f, "[empty]")
        } else {
            write!(f, "[{:#x}, {:#x})", self.lower(), self.upper())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_raw() {
        let b = CompressedBounds::encode(0x1234_5670, 4096);
        assert_eq!(CompressedBounds::from_raw(b.to_raw()), b);
    }

    #[test]
    fn empty_is_all_zero_and_never_matches() {
        assert!(CompressedBounds::EMPTY.is_empty());
        assert_eq!(CompressedBounds::EMPTY.to_raw(), 0);
        assert!(!CompressedBounds::EMPTY.check(0));
        assert!(!CompressedBounds::EMPTY.matches_base(0));
    }

    #[test]
    fn check_is_half_open() {
        let b = CompressedBounds::encode(0x8000, 256);
        assert!(b.check(0x8000));
        assert!(b.check(0x80FF));
        assert!(!b.check(0x8100));
        assert!(!b.check(0x7FFF));
    }

    #[test]
    fn single_granule_chunk() {
        let b = CompressedBounds::encode(0x10, 16);
        assert!(b.check(0x10));
        assert!(b.check(0x1F));
        assert!(!b.check(0x20));
        assert!(!b.check(0x00));
    }

    #[test]
    fn carry_compensation_across_8gib_boundary() {
        // Chunk starting just below 2^33 and spilling past it: the
        // upper part of the address loses bit 33, and the C bit must
        // compensate.
        let base = (1u64 << 33) - 64;
        let b = CompressedBounds::encode(base, 128);
        assert!(b.check(base));
        assert!(b.check(base + 64), "address past the 2^33 wrap");
        assert!(b.check(base + 127));
        assert!(!b.check(base + 128));
    }

    #[test]
    fn aliasing_at_8gib_multiples_is_the_documented_false_positive() {
        let b = CompressedBounds::encode(0x4000_0010, 64);
        // Same low 33 bits, 8 GiB away: the check cannot distinguish.
        let alias = 0x4000_0010 + (1u64 << 34);
        assert!(b.check(alias + 8), "documented aliasing limitation");
    }

    #[test]
    fn matches_base_exact_only() {
        let b = CompressedBounds::encode(0xA000, 256);
        assert!(b.matches_base(0xA000));
        assert!(!b.matches_base(0xA010));
        assert!(!b.matches_base(0x9FF0));
    }

    #[test]
    fn size_and_bounds_accessors() {
        let b = CompressedBounds::encode(0x20_0000, 1000);
        assert_eq!(b.size(), 1000);
        assert_eq!(b.lower(), 0x20_0000);
        assert_eq!(b.upper(), 0x20_0000 + 1000);
    }

    #[test]
    fn max_size_fits() {
        let b = CompressedBounds::encode(0x10, u32::MAX as u64);
        assert_eq!(b.size(), u32::MAX as u64);
        assert!(b.check(0x10));
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn misaligned_base_rejected() {
        CompressedBounds::encode(0x11, 16);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_size_rejected() {
        CompressedBounds::encode(0x10, 0);
    }

    #[test]
    #[should_panic(expected = "32 bits")]
    fn oversized_rejected() {
        CompressedBounds::encode(0x10, 1 << 33);
    }

    #[test]
    fn display_shows_range() {
        let b = CompressedBounds::encode(0x100, 16);
        assert_eq!(b.to_string(), "[0x100, 0x110)");
        assert_eq!(CompressedBounds::EMPTY.to_string(), "[empty]");
    }
}
