//! The hashed bounds table (HBT): AOS's metadata store.
//!
//! AOS keeps one bounds record per live heap chunk in a per-process
//! table indexed *directly by PAC* (paper §V-B) — the embedded PAC is
//! the hash, so the metadata address is just
//! `BND_BASE + (PAC << (log2(assoc) + 6)) + (way << 6)` (Eqs. 1–2),
//! replacing Intel MPX's multi-level walks with one add.
//!
//! This crate implements:
//!
//! - [`CompressedBounds`] — the 8-byte bounds encoding of Fig. 9
//!   (29-bit partial lower bound + 32-bit size), which packs eight
//!   bounds into each 64-byte table way;
//! - [`HashedBoundsTable`] — the multi-way table with occupancy-checked
//!   stores (`bndstr`), matching clears (`bndclr`) and way-iterating
//!   checks, exactly the operations the memory check unit's FSMs
//!   perform;
//! - **gradual resizing** (§V-B, §V-F3): on row overflow the table
//!   doubles its associativity, and a row-by-row migration manager
//!   keeps both tables live so accesses are never blocked (Fig. 10).
//!
//! # Examples
//!
//! ```
//! use aos_hbt::{CompressedBounds, HashedBoundsTable, HbtConfig};
//!
//! let mut hbt = HashedBoundsTable::new(HbtConfig::default());
//! let bounds = CompressedBounds::encode(0x4000_0010, 64);
//! hbt.store(0xBEEF, bounds).unwrap();
//! // An access inside the chunk finds its bounds...
//! assert!(hbt.check(0xBEEF, 0x4000_0030, 0).is_some());
//! // ...one past the end does not.
//! assert!(hbt.check(0xBEEF, 0x4000_0050, 0).is_none());
//! ```

mod compress;
mod table;

pub use compress::{CompressedBounds, MalformedBounds};
pub use table::{
    ClearError, HashedBoundsTable, HbtConfig, HbtLookup, HbtSlot, HbtStats, StoreError,
    BOUNDS_PER_WAY,
};
