//! Watchdog metadata addressing.
//!
//! Watchdog (Nagarakatte et al., ISCA 2012) keeps per-pointer bounds
//! and an allocation identifier in extended registers, plus a *lock
//! location* in memory per allocation that is invalidated on free; a
//! check µop loads the lock and compares it with the pointer's key.
//! Pointer loads/stores additionally move the 24-byte metadata through
//! a shadow space. We model both memory structures as disjoint linear
//! regions derived from the data address, which reproduces the cache
//! behaviour that matters: every check is an extra load to a
//! non-data region, and every pointer memop moves 24 extra bytes.

/// Base of the lock-location region.
pub const LOCK_BASE: u64 = 0x2000_0000_0000;

/// Base of the metadata shadow region.
pub const SHADOW_BASE: u64 = 0x2800_0000_0000;

/// Lock-location address for a data address: Watchdog keeps one lock
/// per *allocation*, which we approximate as one 8-byte lock per 1 KiB
/// region — coarse enough that the lock-location cache captures the
/// working set, as in the Watchdog design.
///
/// # Examples
///
/// ```
/// let a = aos_isa::watchdog::lock_address(0x4000);
/// let b = aos_isa::watchdog::lock_address(0x4400);
/// assert_ne!(a, b);
/// assert_eq!(a % 8, 0);
/// ```
pub fn lock_address(addr: u64) -> u64 {
    LOCK_BASE + (addr >> 10) * 8
}

/// Shadow-space address of the 24-byte metadata record for a pointer
/// stored at `addr` (one record per 8-byte pointer slot).
///
/// # Examples
///
/// ```
/// let a = aos_isa::watchdog::shadow_address(0x4000);
/// let b = aos_isa::watchdog::shadow_address(0x4008);
/// assert_eq!(b - a, 24, "adjacent pointer slots have adjacent records");
/// ```
pub fn shadow_address(addr: u64) -> u64 {
    SHADOW_BASE + (addr >> 3) * 24
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_disjoint_from_data_and_each_other() {
        for addr in [0u64, 0x4000, 0xFFFF_FFFF, 0x3F_FFFF_FFFF] {
            let lock = lock_address(addr);
            let shadow = shadow_address(addr);
            assert!((LOCK_BASE..SHADOW_BASE).contains(&lock));
            assert!(shadow >= SHADOW_BASE);
        }
    }

    #[test]
    fn same_region_shares_a_lock() {
        assert_eq!(lock_address(0x4000), lock_address(0x43FF));
        assert_ne!(lock_address(0x4000), lock_address(0x4400));
    }

    #[test]
    fn shadow_scales_with_pointer_slots() {
        assert_eq!(shadow_address(0x4000), shadow_address(0x4007));
        assert_eq!(shadow_address(0x4008) - shadow_address(0x4000), 24);
    }
}
