//! Reusable proptest strategies for well-formed op streams
//! (`proptest-support` feature).
//!
//! Before this module, every property suite grew its own ad-hoc
//! generator: `tests/properties.rs` drew `(kind, addr, size)` tuple
//! scripts for the process model, `crates/hbt/tests` drew a slightly
//! different tuple shape for the table, and neither could produce a
//! *valid Fig. 7 instruction stream* — so no property could assert
//! "the linter is silent on every well-formed program" over anything
//! richer than the trace generator's fixed workloads.
//!
//! Two strategies centralize that:
//!
//! - [`action_script`] — the shared `(u8, u64, u64)` tuple-vec shape,
//!   parameterized by its bounds, for suites that interpret abstract
//!   action scripts against a model;
//! - [`lifecycle_stream`] — complete op streams obeying the Fig. 7
//!   lifecycle (`pacma` → `bndstr` → in-bounds accesses → `bndclr` →
//!   `xpacm`, with correct Algorithm 1 AHC bits and an optional
//!   dangling re-sign tail), with a configurable live-set cap. Every
//!   generated stream is lint-clean and violation-free by
//!   construction, which is exactly the precondition a
//!   false-positive property needs.

use aos_ptrauth::{compute_ahc, PointerLayout};
use proptest::collection::{vec, SizeRange, VecStrategy};
use proptest::strategy::Strategy;

use crate::Op;

/// The shared abstract-action script shape: `(kind, a, b)` tuples with
/// caller-chosen bounds. `kind` selects the action, `a`/`b` are its
/// operands (address/row and size/payload by convention).
pub type ActionScript = Vec<(u8, u64, u64)>;

/// A script of `(kind, a, b)` actions: `kind in kinds`, `a in a`,
/// `b in b`, with `len` drawn from the given size range.
pub fn action_script(
    kinds: std::ops::Range<u8>,
    a: std::ops::Range<u64>,
    b: std::ops::Range<u64>,
    len: impl Into<SizeRange>,
) -> VecStrategy<(std::ops::Range<u8>, std::ops::Range<u64>, std::ops::Range<u64>)> {
    vec((kinds, a, b), len)
}

/// Tuning for [`lifecycle_stream`].
#[derive(Debug, Clone)]
pub struct LifecycleConfig {
    /// Maximum simultaneously live chunks; `malloc` actions beyond
    /// the cap degrade to filler ops.
    pub max_live: usize,
    /// Abstract actions per stream (each expands to 0–2 ops).
    pub actions: std::ops::Range<usize>,
    /// Chunk sizes are drawn from `16..=max_size` (rounded to 16).
    pub max_size: u64,
    /// First chunk base address; chunks are bump-allocated upward
    /// with 16-byte alignment from here.
    pub base: u64,
    /// Whether a freed chunk may be re-signed dangling (`pacma` with
    /// size 0, the Fig. 7 temporal tail). The re-signed pointer is
    /// never accessed, so streams stay clean.
    pub resign_dangling: bool,
}

impl Default for LifecycleConfig {
    fn default() -> Self {
        LifecycleConfig {
            max_live: 8,
            actions: 1..200,
            max_size: 512,
            base: 0x0000_4000_0000,
            resign_dangling: false,
        }
    }
}

/// One live chunk in the interpreter's model.
#[derive(Debug, Clone, Copy)]
struct Chunk {
    addr: u64,
    size: u64,
    pointer: u64,
}

/// Streams of ops forming valid Fig. 7 lifecycles under
/// [`PointerLayout::default`]: every `pacma` carries the Algorithm 1
/// AHC for its `(address, size)`, every `bndstr` follows its `pacma`,
/// accesses stay in bounds of a live chunk, every `bndclr` is
/// followed by its `xpacm`, and at most `max_live` chunks are live at
/// once. Chunks still live at end-of-stream are left live — a legal
/// program state the verifier accepts.
pub fn lifecycle_stream(config: LifecycleConfig) -> impl Strategy<Value = Vec<Op>> {
    assert!(config.max_live > 0, "live-set cap must be positive");
    assert!(config.max_size >= 16, "chunks are at least 16 bytes");
    let script = action_script(0..4, 0..u64::MAX, 0..u64::MAX, config.actions.clone());
    script.prop_map(move |actions| interpret_lifecycles(&config, &actions))
}

/// Deterministically expands an abstract action script into a valid
/// lifecycle op stream (the `prop_map` body of [`lifecycle_stream`]).
fn interpret_lifecycles(config: &LifecycleConfig, actions: &[(u8, u64, u64)]) -> Vec<Op> {
    let layout = PointerLayout::default();
    let mut ops = Vec::with_capacity(actions.len() * 2);
    let mut live: Vec<Chunk> = Vec::with_capacity(config.max_live);
    let mut freed: Option<Chunk> = None;
    let mut bump = config.base & !0xF;
    let mut next_pac: u64 = 1;
    for &(kind, a, b) in actions {
        match kind {
            // malloc: sign and store bounds for a fresh chunk.
            0 if live.len() < config.max_live => {
                let size = 16 + (a % (config.max_size - 15)) & !0xF;
                let size = size.max(16);
                let addr = bump;
                bump += size + 16;
                let pac = next_pac % layout.pac_space();
                next_pac += 1;
                let ahc = compute_ahc(addr, size, layout.va_size()).bits();
                let pointer = layout.compose(addr, pac, ahc);
                ops.push(Op::Pacma { pointer, size });
                ops.push(Op::BndStr { pointer, size });
                live.push(Chunk {
                    addr,
                    size,
                    pointer,
                });
            }
            // access: an in-bounds load or store through a live chunk.
            1 if !live.is_empty() => {
                let chunk = live[(a % live.len() as u64) as usize];
                let bytes: u32 = if chunk.size >= 8 { 8 } else { 1 };
                let offset = b % (chunk.size - u64::from(bytes) + 1);
                let pointer = layout.compose(
                    chunk.addr + offset,
                    layout.pac(chunk.pointer),
                    layout.ahc(chunk.pointer),
                );
                if b & 1 == 0 {
                    ops.push(Op::Load {
                        pointer,
                        bytes,
                        chained: false,
                    });
                } else {
                    ops.push(Op::Store { pointer, bytes });
                }
            }
            // free: clear bounds, then strip.
            2 if !live.is_empty() => {
                let chunk = live.remove((a % live.len() as u64) as usize);
                ops.push(Op::BndClr {
                    pointer: chunk.pointer,
                });
                ops.push(Op::Xpacm);
                freed = Some(chunk);
            }
            // filler: plain compute traffic.
            _ => {
                ops.push(match a % 3 {
                    0 => Op::IntAlu,
                    1 => Op::IntMul,
                    _ => Op::FpAlu,
                });
            }
        }
    }
    if config.resign_dangling {
        if let Some(chunk) = freed {
            // Fig. 7's temporal tail: the freed pointer is re-signed
            // with size 0 (AHC preserved) and then never used.
            ops.push(Op::Pacma {
                pointer: chunk.pointer,
                size: 0,
            });
        }
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::test_runner::TestRng;

    fn streams(config: LifecycleConfig, seed: u64, n: usize) -> Vec<Vec<Op>> {
        let strat = lifecycle_stream(config);
        let mut rng = TestRng::from_seed(seed);
        (0..n).map(|_| strat.generate(&mut rng)).collect()
    }

    #[test]
    fn lifecycles_respect_the_live_set_cap() {
        for stream in streams(
            LifecycleConfig {
                max_live: 3,
                ..LifecycleConfig::default()
            },
            7,
            64,
        ) {
            let mut live = 0i64;
            let mut peak = 0i64;
            for op in &stream {
                match op {
                    Op::BndStr { .. } => {
                        live += 1;
                        peak = peak.max(live);
                    }
                    Op::BndClr { .. } => live -= 1,
                    _ => {}
                }
            }
            assert!(live >= 0, "a bndclr without a live chunk");
            assert!(peak <= 3, "live set exceeded the cap: {peak}");
        }
    }

    #[test]
    fn every_op_respects_the_lifecycle_protocol() {
        let layout = PointerLayout::default();
        for stream in streams(
            LifecycleConfig {
                resign_dangling: true,
                ..LifecycleConfig::default()
            },
            11,
            64,
        ) {
            let mut live: Vec<(u64, u64, u64)> = Vec::new(); // (pac, addr, size)
            let mut pending_sign: Option<(u64, u64)> = None;
            let mut pending_strips = 0i64;
            for op in &stream {
                match *op {
                    Op::Pacma { pointer, size } if size != 0 => {
                        assert!(pending_sign.is_none(), "unpaired pacma");
                        let expected =
                            compute_ahc(layout.address(pointer), size, layout.va_size()).bits();
                        assert_eq!(layout.ahc(pointer), expected, "AHC bits wrong");
                        pending_sign = Some((layout.pac(pointer), size));
                    }
                    Op::Pacma { pointer, size: 0 } => {
                        assert!(layout.is_signed(pointer), "dangling re-sign is signed");
                    }
                    Op::Pacma { .. } => unreachable!(),
                    Op::BndStr { pointer, size } => {
                        let (pac, signed_size) =
                            pending_sign.take().expect("bndstr without pacma");
                        assert_eq!(layout.pac(pointer), pac);
                        assert_eq!(size, signed_size);
                        live.push((pac, layout.address(pointer), size));
                    }
                    Op::BndClr { pointer } => {
                        let pac = layout.pac(pointer);
                        let i = live
                            .iter()
                            .position(|&(p, _, _)| p == pac)
                            .expect("bndclr of a dead chunk");
                        live.remove(i);
                        pending_strips += 1;
                    }
                    Op::Xpacm => {
                        pending_strips -= 1;
                        assert!(pending_strips >= 0, "xpacm without bndclr");
                    }
                    Op::Load { pointer, bytes, .. } | Op::Store { pointer, bytes } => {
                        let (pac, addr) = (layout.pac(pointer), layout.address(pointer));
                        let inside = live.iter().any(|&(p, base, size)| {
                            p == pac && addr >= base && addr + u64::from(bytes) <= base + size
                        });
                        assert!(inside, "access outside every live chunk");
                    }
                    _ => {}
                }
            }
            assert!(pending_sign.is_none(), "stream ends mid-sign");
            assert_eq!(pending_strips, 0, "stream ends with unpaired strips");
        }
    }

    #[test]
    fn action_scripts_honor_their_bounds() {
        let strat = action_script(0..4, 0..64, 1..512, 1..200);
        let mut rng = TestRng::from_seed(3);
        for _ in 0..50 {
            let script = strat.generate(&mut rng);
            assert!((1..200).contains(&script.len()));
            for (k, a, b) in script {
                assert!(k < 4);
                assert!(a < 64);
                assert!((1..512).contains(&b));
            }
        }
    }
}
