//! A persistent, CRC-checked trace-corpus store.
//!
//! Traces were previously regenerated from seeds on every run; a
//! corpus file banks them so campaigns replay *bit-identically* across
//! sessions (corpus-driven regression suites, fuzzer finds, the
//! `aos serve` replay jobs). The design goal is graceful degradation
//! under hostile bytes: every structure that crosses the disk boundary
//! is length-prefixed and CRC-32 checksummed, so a flipped bit or a
//! truncated write surfaces as a typed [`AosError::Corruption`] that
//! *quarantines one entry* — never a panic, never a silently
//! mis-replayed op.
//!
//! On-disk layout (`aos-corpus/v1`, all integers little-endian):
//!
//! ```text
//! offset 0   magic "AOSC"
//! offset 4   version u16 = 1
//! offset 6   reserved u16 = 0
//! offset 8   index_offset u64   (patched by finish(); 0 = unfinished)
//! offset 16  entry_count u32    (patched by finish())
//! offset 20  frames...
//!
//! frame      [len u32][crc32 u32][kind u8][payload: len-1 bytes]
//!            crc32 covers kind + payload
//! kind 0     entry header: name_len u32, name, meta_len u32, metadata
//! kind 1     op block: codec op records (≤ BLOCK_OPS ops)
//! kind 2     entry trailer: op_count u64, block_count u32
//!
//! index      per entry: name_len u32, name, meta_len u32, metadata,
//!            offset u64, op_count u64, block_count u32;
//!            then crc32 u32 over all index bytes
//! ```
//!
//! The header's `index_offset` makes the index a random-access jump
//! (mmap-friendly: entry frames are contiguous from their recorded
//! offsets); the per-entry trailer cross-checks the streamed frame
//! sequence against the op/block counts the writer committed, so a
//! corpus truncated mid-entry is detected even when every surviving
//! frame checks clean.
//!
//! # Examples
//!
//! ```
//! use aos_isa::{corpus, Op};
//! use aos_util::Telemetry;
//!
//! let dir = std::env::temp_dir().join("aos-corpus-doc");
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join("demo.aosc");
//! let ops = vec![Op::IntAlu, Op::Load { pointer: 0x40, bytes: 8, chained: false }];
//!
//! let mut writer = corpus::CorpusWriter::create(&path, Telemetry::disabled())?;
//! writer.record("mcf-aos", "workload=mcf system=AOS", ops.iter().copied())?;
//! writer.finish()?;
//!
//! let reader = corpus::CorpusReader::open(&path, Telemetry::disabled())?;
//! let entry = reader.find("mcf-aos").unwrap().clone();
//! let replayed: Vec<Op> = reader.replay(&entry)?.collect::<Result<_, _>>()?;
//! assert_eq!(replayed, ops);
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok::<(), aos_util::AosError>(())
//! ```

use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use aos_util::{AosError, Counter, Telemetry};

use crate::codec;
use crate::Op;

/// File magic: "AOSC".
const MAGIC: [u8; 4] = *b"AOSC";
/// Format version.
const VERSION: u16 = 1;
/// Header bytes before the first frame.
const HEADER_LEN: u64 = 20;

/// Frame kinds.
const KIND_ENTRY_HEADER: u8 = 0;
const KIND_OP_BLOCK: u8 = 1;
const KIND_ENTRY_TRAILER: u8 = 2;

/// Ops per CRC-framed block (the streaming granule; a corrupt block
/// quarantines at most this many ops' worth of frame).
pub const BLOCK_OPS: usize = 4096;

/// Sanity bound on any single frame's length prefix: a corrupt length
/// must produce a typed error, not an allocation storm.
const MAX_FRAME_LEN: u32 = 1 << 26;
/// Sanity bound on name/metadata strings.
const MAX_STRING_LEN: u32 = 1 << 20;

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE 802.3 polynomial, the zlib convention) over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// One recorded trace in a corpus: its identity plus where its frames
/// live, straight from the index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntryMeta {
    /// Caller-chosen entry name, unique within the corpus.
    pub name: String,
    /// Free-form provenance string (workload/system/scale/fault).
    pub metadata: String,
    /// Byte offset of the entry's header frame.
    pub offset: u64,
    /// Ops the entry holds.
    pub op_count: u64,
    /// Frames the entry's ops span (trailer and header excluded).
    pub block_count: u32,
}

fn io_err(path: &Path, e: impl std::fmt::Display) -> AosError {
    AosError::Io {
        context: path.display().to_string(),
        detail: e.to_string(),
    }
}

fn corrupt(path: &Path, detail: impl std::fmt::Display) -> AosError {
    AosError::corruption(format!("corpus {}", path.display()), detail)
}

// ---------------------------------------------------------------- writer

/// Streams entries into a new corpus file. Entries are recorded one at
/// a time ([`CorpusWriter::record`] drains its op iterator in
/// `BLOCK_OPS` granules, never materializing the trace); `finish`
/// writes the index and patches the header, making the file valid —
/// a writer dropped without `finish` leaves `index_offset = 0`, which
/// readers reject as an unfinished corpus.
#[derive(Debug)]
pub struct CorpusWriter {
    path: PathBuf,
    file: io::BufWriter<std::fs::File>,
    written: u64,
    entries: Vec<EntryMeta>,
    telemetry: Telemetry,
}

impl CorpusWriter {
    /// Creates `path` and writes the (unfinished) header.
    ///
    /// # Errors
    ///
    /// [`AosError::Io`] when the file cannot be created or written.
    pub fn create(path: impl AsRef<Path>, telemetry: Telemetry) -> Result<Self, AosError> {
        let path = path.as_ref().to_path_buf();
        let file = std::fs::File::create(&path).map_err(|e| io_err(&path, e))?;
        let mut writer = Self {
            file: io::BufWriter::new(file),
            written: 0,
            entries: Vec::new(),
            telemetry,
            path,
        };
        let mut header = Vec::with_capacity(HEADER_LEN as usize);
        header.extend_from_slice(&MAGIC);
        header.extend_from_slice(&VERSION.to_le_bytes());
        header.extend_from_slice(&0u16.to_le_bytes());
        header.extend_from_slice(&0u64.to_le_bytes()); // index_offset, patched
        header.extend_from_slice(&0u32.to_le_bytes()); // entry_count, patched
        writer.write_bytes(&header)?;
        Ok(writer)
    }

    fn write_bytes(&mut self, bytes: &[u8]) -> Result<(), AosError> {
        self.file
            .write_all(bytes)
            .map_err(|e| io_err(&self.path, e))?;
        self.written += bytes.len() as u64;
        Ok(())
    }

    /// Writes one `[len][crc][kind][payload]` frame.
    fn write_frame(&mut self, kind: u8, payload: &[u8]) -> Result<(), AosError> {
        let mut body = Vec::with_capacity(payload.len() + 1);
        body.push(kind);
        body.extend_from_slice(payload);
        let mut frame = Vec::with_capacity(body.len() + 8);
        frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&body).to_le_bytes());
        frame.extend_from_slice(&body);
        self.write_bytes(&frame)?;
        self.telemetry.count(Counter::CorpusBlocksWritten);
        Ok(())
    }

    /// Records one entry: streams `ops` into CRC-framed blocks and
    /// commits the op/block counts in the entry trailer. Returns the
    /// entry's index record.
    ///
    /// # Errors
    ///
    /// [`AosError::InvalidInput`] for a duplicate or oversized
    /// name/metadata, [`AosError::Io`] on write failure.
    pub fn record(
        &mut self,
        name: &str,
        metadata: &str,
        ops: impl Iterator<Item = Op>,
    ) -> Result<EntryMeta, AosError> {
        if self.entries.iter().any(|e| e.name == name) {
            return Err(AosError::invalid_input(
                "corpus entry",
                format!("duplicate entry name '{name}'"),
            ));
        }
        if name.len() as u32 > MAX_STRING_LEN || metadata.len() as u32 > MAX_STRING_LEN {
            return Err(AosError::invalid_input(
                "corpus entry",
                "name/metadata exceed 1 MiB",
            ));
        }
        let offset = self.written;
        let mut header = Vec::with_capacity(name.len() + metadata.len() + 8);
        header.extend_from_slice(&(name.len() as u32).to_le_bytes());
        header.extend_from_slice(name.as_bytes());
        header.extend_from_slice(&(metadata.len() as u32).to_le_bytes());
        header.extend_from_slice(metadata.as_bytes());
        self.write_frame(KIND_ENTRY_HEADER, &header)?;

        let mut op_count = 0u64;
        let mut block_count = 0u32;
        let mut payload = Vec::new();
        let mut ops_in_block = 0usize;
        for op in ops {
            codec::write_op(&mut payload, &op).map_err(|e| io_err(&self.path, e))?;
            op_count += 1;
            ops_in_block += 1;
            if ops_in_block == BLOCK_OPS {
                self.write_frame(KIND_OP_BLOCK, &payload)?;
                block_count += 1;
                payload.clear();
                ops_in_block = 0;
            }
        }
        if ops_in_block > 0 {
            self.write_frame(KIND_OP_BLOCK, &payload)?;
            block_count += 1;
        }

        let mut trailer = Vec::with_capacity(12);
        trailer.extend_from_slice(&op_count.to_le_bytes());
        trailer.extend_from_slice(&block_count.to_le_bytes());
        self.write_frame(KIND_ENTRY_TRAILER, &trailer)?;

        let meta = EntryMeta {
            name: name.to_string(),
            metadata: metadata.to_string(),
            offset,
            op_count,
            block_count,
        };
        self.entries.push(meta.clone());
        Ok(meta)
    }

    /// Writes the index, patches the header, and flushes. Returns the
    /// recorded entries.
    ///
    /// # Errors
    ///
    /// [`AosError::Io`] on write/seek failure.
    pub fn finish(mut self) -> Result<Vec<EntryMeta>, AosError> {
        let index_offset = self.written;
        let mut index = Vec::new();
        for e in &self.entries {
            index.extend_from_slice(&(e.name.len() as u32).to_le_bytes());
            index.extend_from_slice(e.name.as_bytes());
            index.extend_from_slice(&(e.metadata.len() as u32).to_le_bytes());
            index.extend_from_slice(e.metadata.as_bytes());
            index.extend_from_slice(&e.offset.to_le_bytes());
            index.extend_from_slice(&e.op_count.to_le_bytes());
            index.extend_from_slice(&e.block_count.to_le_bytes());
        }
        let crc = crc32(&index);
        self.write_bytes(&index)?;
        let crc_bytes = crc.to_le_bytes();
        self.write_bytes(&crc_bytes)?;

        let path = self.path.clone();
        let entry_count = self.entries.len() as u32;
        // Flush buffered frames before seeking under the buffer.
        self.file.flush().map_err(|e| io_err(&path, e))?;
        let file = self.file.get_mut();
        file.seek(SeekFrom::Start(8)).map_err(|e| io_err(&path, e))?;
        file.write_all(&index_offset.to_le_bytes())
            .map_err(|e| io_err(&path, e))?;
        file.write_all(&entry_count.to_le_bytes())
            .map_err(|e| io_err(&path, e))?;
        file.sync_all().map_err(|e| io_err(&path, e))?;
        Ok(self.entries)
    }
}

// ---------------------------------------------------------------- reader

/// One decoded frame: its kind and payload.
struct Frame {
    kind: u8,
    payload: Vec<u8>,
}

/// Reads and CRC-validates the frame at the reader's position.
fn read_frame<R: Read>(
    r: &mut R,
    path: &Path,
    telemetry: &Telemetry,
) -> Result<Frame, AosError> {
    let mut fixed = [0u8; 8];
    r.read_exact(&mut fixed)
        .map_err(|_| {
            telemetry.count(Counter::CorpusCrcFailures);
            corrupt(path, "truncated frame header")
        })?;
    let len = u32::from_le_bytes([fixed[0], fixed[1], fixed[2], fixed[3]]);
    let crc = u32::from_le_bytes([fixed[4], fixed[5], fixed[6], fixed[7]]);
    if len == 0 || len > MAX_FRAME_LEN {
        telemetry.count(Counter::CorpusCrcFailures);
        return Err(corrupt(path, format!("implausible frame length {len}")));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body).map_err(|_| {
        telemetry.count(Counter::CorpusCrcFailures);
        corrupt(path, "frame truncated mid-payload")
    })?;
    if crc32(&body) != crc {
        telemetry.count(Counter::CorpusCrcFailures);
        return Err(corrupt(path, "frame CRC mismatch"));
    }
    telemetry.count(Counter::CorpusBlocksRead);
    Ok(Frame {
        kind: body[0],
        payload: body[1..].to_vec(),
    })
}

fn take_u32(bytes: &[u8], at: &mut usize, path: &Path) -> Result<u32, AosError> {
    let end = *at + 4;
    if end > bytes.len() {
        return Err(corrupt(path, "index record truncated"));
    }
    let v = u32::from_le_bytes([bytes[*at], bytes[*at + 1], bytes[*at + 2], bytes[*at + 3]]);
    *at = end;
    Ok(v)
}

fn take_u64(bytes: &[u8], at: &mut usize, path: &Path) -> Result<u64, AosError> {
    let end = *at + 8;
    if end > bytes.len() {
        return Err(corrupt(path, "index record truncated"));
    }
    let mut b = [0u8; 8];
    b.copy_from_slice(&bytes[*at..end]);
    *at = end;
    Ok(u64::from_le_bytes(b))
}

fn take_string(bytes: &[u8], at: &mut usize, path: &Path) -> Result<String, AosError> {
    let len = take_u32(bytes, at, path)?;
    if len > MAX_STRING_LEN {
        return Err(corrupt(path, format!("implausible string length {len}")));
    }
    let end = *at + len as usize;
    if end > bytes.len() {
        return Err(corrupt(path, "string truncated"));
    }
    let s = std::str::from_utf8(&bytes[*at..end])
        .map_err(|_| corrupt(path, "string is not UTF-8"))?
        .to_string();
    *at = end;
    Ok(s)
}

/// One entry's verification outcome.
#[derive(Debug, Clone)]
pub struct EntryCheck {
    /// The entry's index record.
    pub entry: EntryMeta,
    /// `Ok` when every frame validated and the trailer counts match;
    /// the quarantining [`AosError`] otherwise.
    pub status: Result<(), AosError>,
}

/// Opens and replays a finished corpus. Every read path is typed:
/// malformed bytes become [`AosError::Corruption`] naming the file,
/// never a panic.
#[derive(Debug)]
pub struct CorpusReader {
    path: PathBuf,
    entries: Vec<EntryMeta>,
    telemetry: Telemetry,
}

impl CorpusReader {
    /// Opens `path`: validates magic/version, requires a finished
    /// index, and CRC-checks the index bytes.
    ///
    /// # Errors
    ///
    /// [`AosError::Io`] when the file cannot be read,
    /// [`AosError::Corruption`] for bad magic, an unsupported version,
    /// an unfinished corpus, or an index that fails its CRC.
    pub fn open(path: impl AsRef<Path>, telemetry: Telemetry) -> Result<Self, AosError> {
        let path = path.as_ref().to_path_buf();
        let mut file = std::fs::File::open(&path).map_err(|e| io_err(&path, e))?;
        let mut header = [0u8; HEADER_LEN as usize];
        file.read_exact(&mut header)
            .map_err(|_| corrupt(&path, "file shorter than the corpus header"))?;
        if header[0..4] != MAGIC {
            return Err(corrupt(&path, "not an AOS corpus (bad magic)"));
        }
        if u16::from_le_bytes([header[4], header[5]]) != VERSION {
            return Err(corrupt(&path, "unsupported corpus version"));
        }
        let index_offset = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
        let entry_count = u32::from_le_bytes(header[16..20].try_into().expect("4 bytes"));
        if index_offset == 0 {
            return Err(corrupt(
                &path,
                "unfinished corpus (writer never reached finish())",
            ));
        }
        let file_len = file.metadata().map_err(|e| io_err(&path, e))?.len();
        if index_offset + 4 > file_len {
            return Err(corrupt(&path, "index offset beyond end of file"));
        }
        file.seek(SeekFrom::Start(index_offset))
            .map_err(|e| io_err(&path, e))?;
        let mut index = vec![0u8; (file_len - index_offset) as usize];
        file.read_exact(&mut index).map_err(|e| io_err(&path, e))?;
        let (index, crc_bytes) = index.split_at(index.len() - 4);
        let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
        if crc32(index) != stored {
            return Err(corrupt(&path, "index CRC mismatch"));
        }
        let mut entries = Vec::with_capacity(entry_count as usize);
        let mut at = 0usize;
        for _ in 0..entry_count {
            let name = take_string(index, &mut at, &path)?;
            let metadata = take_string(index, &mut at, &path)?;
            let offset = take_u64(index, &mut at, &path)?;
            let op_count = take_u64(index, &mut at, &path)?;
            let block_count = take_u32(index, &mut at, &path)?;
            entries.push(EntryMeta {
                name,
                metadata,
                offset,
                op_count,
                block_count,
            });
        }
        if at != index.len() {
            return Err(corrupt(&path, "index has trailing bytes"));
        }
        Ok(Self {
            path,
            entries,
            telemetry,
        })
    }

    /// The corpus path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Every entry, in record order.
    pub fn entries(&self) -> &[EntryMeta] {
        &self.entries
    }

    /// The entry named `name`, if present.
    pub fn find(&self, name: &str) -> Option<&EntryMeta> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Streams every frame of `entry`, validating CRCs and the trailer
    /// counts, without decoding ops. One pass, `O(block)` memory.
    ///
    /// # Errors
    ///
    /// The quarantining [`AosError::Corruption`] of the first bad
    /// frame, or [`AosError::Io`] when the file cannot be read.
    pub fn verify_entry(&self, entry: &EntryMeta) -> Result<(), AosError> {
        let mut replay = self.replay(entry)?;
        for op in &mut replay {
            op?;
        }
        Ok(())
    }

    /// Verifies every entry; per-entry status, corrupt entries
    /// quarantined individually (one bad entry never hides another).
    pub fn verify(&self) -> Vec<EntryCheck> {
        self.entries
            .iter()
            .map(|entry| EntryCheck {
                entry: entry.clone(),
                status: self.verify_entry(entry),
            })
            .collect()
    }

    /// Opens a streaming replay of `entry`: an iterator of
    /// `Result<Op, AosError>` that CRC-validates each block *before*
    /// yielding any op from it, so a corrupt block can never feed a
    /// machine — the iterator yields the typed error once and ends.
    ///
    /// # Errors
    ///
    /// Opening fails with [`AosError::Io`] / [`AosError::Corruption`]
    /// when the file cannot be opened or the entry's header frame is
    /// bad.
    pub fn replay(&self, entry: &EntryMeta) -> Result<Replay, AosError> {
        let file = std::fs::File::open(&self.path).map_err(|e| io_err(&self.path, e))?;
        let mut reader = io::BufReader::new(file);
        reader
            .seek(SeekFrom::Start(entry.offset))
            .map_err(|e| io_err(&self.path, e))?;
        let header = read_frame(&mut reader, &self.path, &self.telemetry)?;
        if header.kind != KIND_ENTRY_HEADER {
            self.telemetry.count(Counter::CorpusCrcFailures);
            return Err(corrupt(
                &self.path,
                format!("entry '{}' does not start with a header frame", entry.name),
            ));
        }
        Ok(Replay {
            path: self.path.clone(),
            entry: entry.clone(),
            reader,
            telemetry: self.telemetry.clone(),
            block: Vec::new().into_iter(),
            blocks_seen: 0,
            ops_seen: 0,
            done: false,
        })
    }
}

/// The streaming replay handle returned by [`CorpusReader::replay`].
#[derive(Debug)]
pub struct Replay {
    path: PathBuf,
    entry: EntryMeta,
    reader: io::BufReader<std::fs::File>,
    telemetry: Telemetry,
    block: std::vec::IntoIter<Op>,
    blocks_seen: u32,
    ops_seen: u64,
    done: bool,
}

impl Replay {
    /// Decodes the next frame into the block buffer; `Ok(false)` on a
    /// clean trailer.
    fn refill(&mut self) -> Result<bool, AosError> {
        let frame = read_frame(&mut self.reader, &self.path, &self.telemetry)?;
        match frame.kind {
            KIND_OP_BLOCK => {
                let mut ops = Vec::new();
                let mut cursor = &frame.payload[..];
                while let Some((&tag, rest)) = cursor.split_first() {
                    let mut rest = rest;
                    let op = codec::read_op(tag, &mut rest).map_err(|e| {
                        self.telemetry.count(Counter::CorpusCrcFailures);
                        corrupt(&self.path, format!("op block decode failed: {e}"))
                    })?;
                    ops.push(op);
                    cursor = rest;
                }
                self.blocks_seen += 1;
                self.ops_seen += ops.len() as u64;
                self.block = ops.into_iter();
                Ok(true)
            }
            KIND_ENTRY_TRAILER => {
                if frame.payload.len() != 12 {
                    self.telemetry.count(Counter::CorpusCrcFailures);
                    return Err(corrupt(&self.path, "entry trailer has the wrong size"));
                }
                let op_count =
                    u64::from_le_bytes(frame.payload[0..8].try_into().expect("8 bytes"));
                let block_count =
                    u32::from_le_bytes(frame.payload[8..12].try_into().expect("4 bytes"));
                if op_count != self.ops_seen || block_count != self.blocks_seen {
                    self.telemetry.count(Counter::CorpusCrcFailures);
                    return Err(corrupt(
                        &self.path,
                        format!(
                            "entry '{}' trailer mismatch: trailer says {op_count} ops / \
                             {block_count} blocks, stream carried {} / {}",
                            self.entry.name, self.ops_seen, self.blocks_seen
                        ),
                    ));
                }
                Ok(false)
            }
            other => {
                self.telemetry.count(Counter::CorpusCrcFailures);
                Err(corrupt(
                    &self.path,
                    format!("unexpected frame kind {other} inside entry"),
                ))
            }
        }
    }

    /// Ops yielded so far.
    pub fn ops_yielded(&self) -> u64 {
        self.ops_seen - self.block.len() as u64
    }
}

impl Iterator for Replay {
    type Item = Result<Op, AosError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            if let Some(op) = self.block.next() {
                return Some(Ok(op));
            }
            match self.refill() {
                Ok(true) => continue,
                Ok(false) => {
                    self.done = true;
                    return None;
                }
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ops(n: usize) -> Vec<Op> {
        (0..n)
            .map(|i| match i % 5 {
                0 => Op::IntAlu,
                1 => Op::Load {
                    pointer: 0x4000 + i as u64,
                    bytes: 8,
                    chained: false,
                },
                2 => Op::Store {
                    pointer: 0x8000 + i as u64,
                    bytes: 4,
                },
                3 => Op::Pacma {
                    pointer: 0x4000_0000 + i as u64,
                    size: 64,
                },
                _ => Op::Branch {
                    pc: i as u64,
                    taken: i % 2 == 0,
                    mispredicted: false,
                },
            })
            .collect()
    }

    fn temp_corpus(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("aos-corpus-tests");
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir.join(name)
    }

    #[test]
    fn record_replay_roundtrips_across_block_boundaries() {
        let path = temp_corpus("roundtrip.aosc");
        let ops = sample_ops(BLOCK_OPS * 2 + 17);
        let t = Telemetry::enabled();
        let mut w = CorpusWriter::create(&path, t.clone()).expect("create");
        let meta = w
            .record("big", "workload=test", ops.iter().copied())
            .expect("record");
        assert_eq!(meta.op_count, ops.len() as u64);
        assert_eq!(meta.block_count, 3);
        w.finish().expect("finish");
        // header + 3 blocks + trailer
        assert_eq!(t.snapshot().counter(Counter::CorpusBlocksWritten), 5);

        let r = CorpusReader::open(&path, Telemetry::enabled()).expect("open");
        assert_eq!(r.entries().len(), 1);
        let entry = r.find("big").expect("entry").clone();
        assert_eq!(entry.metadata, "workload=test");
        let replayed: Vec<Op> = r
            .replay(&entry)
            .expect("replay")
            .collect::<Result<_, _>>()
            .expect("clean replay");
        assert_eq!(replayed, ops);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn multiple_entries_index_and_verify() {
        let path = temp_corpus("multi.aosc");
        let mut w = CorpusWriter::create(&path, Telemetry::disabled()).expect("create");
        w.record("a", "first", sample_ops(10).into_iter()).unwrap();
        w.record("b", "second", sample_ops(100).into_iter()).unwrap();
        w.record("empty", "", std::iter::empty()).unwrap();
        assert!(matches!(
            w.record("a", "dup", std::iter::empty()),
            Err(AosError::InvalidInput { .. })
        ));
        w.finish().unwrap();

        let r = CorpusReader::open(&path, Telemetry::disabled()).unwrap();
        assert_eq!(
            r.entries().iter().map(|e| e.name.as_str()).collect::<Vec<_>>(),
            vec!["a", "b", "empty"]
        );
        for check in r.verify() {
            assert!(check.status.is_ok(), "{}: {:?}", check.entry.name, check.status);
        }
        let empty = r.find("empty").unwrap().clone();
        assert_eq!(empty.op_count, 0);
        assert_eq!(r.replay(&empty).unwrap().count(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unfinished_corpus_is_rejected() {
        let path = temp_corpus("unfinished.aosc");
        let mut w = CorpusWriter::create(&path, Telemetry::disabled()).expect("create");
        w.record("x", "", sample_ops(4).into_iter()).unwrap();
        drop(w); // never finished
        let err = CorpusReader::open(&path, Telemetry::disabled()).unwrap_err();
        assert!(matches!(err, AosError::Corruption { .. }), "{err}");
        assert!(err.to_string().contains("unfinished"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flipped_block_bit_is_quarantined_with_a_typed_error() {
        let path = temp_corpus("bitflip.aosc");
        let ops = sample_ops(64);
        let mut w = CorpusWriter::create(&path, Telemetry::disabled()).expect("create");
        let entry = w.record("victim", "", ops.iter().copied()).unwrap();
        w.finish().unwrap();

        // Flip one bit inside the op-block frame's payload.
        let mut bytes = std::fs::read(&path).unwrap();
        let block_payload_at = entry.offset as usize + 8 + 1 + 4 + "victim".len() + 4 + 8 + 8;
        bytes[block_payload_at + 16] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();

        let t = Telemetry::enabled();
        let r = CorpusReader::open(&path, t.clone()).unwrap();
        let entry = r.find("victim").unwrap().clone();
        let err = r.verify_entry(&entry).unwrap_err();
        assert!(matches!(err, AosError::Corruption { .. }), "{err}");
        assert!(err.to_string().contains("CRC mismatch"));
        assert!(t.snapshot().counter(Counter::CorpusCrcFailures) >= 1);

        // The replay iterator yields zero ops from the corrupt block.
        let mut yielded = 0;
        let mut saw_error = false;
        for op in r.replay(&entry).unwrap() {
            match op {
                Ok(_) => yielded += 1,
                Err(e) => {
                    saw_error = true;
                    assert!(matches!(e, AosError::Corruption { .. }));
                }
            }
        }
        assert!(saw_error);
        assert_eq!(yielded, 0, "no op from a corrupt block may be replayed");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncation_mid_frame_is_detected() {
        let path = temp_corpus("truncated.aosc");
        let mut w = CorpusWriter::create(&path, Telemetry::disabled()).expect("create");
        let entry = w.record("t", "", sample_ops(64).into_iter()).unwrap();
        w.finish().unwrap();
        let bytes = std::fs::read(&path).unwrap();
        // Cut inside the op block: past the entry header frame, into
        // the block payload, well before the trailer.
        let cut = entry.offset as usize + 8 + 1 + 4 + 1 + 4 + 8 + 8 + 40;
        std::fs::write(&path, &bytes[..cut]).unwrap();
        // The index is gone with the truncation: open itself reports
        // corruption rather than serving a file missing its index.
        let err = CorpusReader::open(&path, Telemetry::disabled()).unwrap_err();
        assert!(matches!(err, AosError::Corruption { .. }), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn index_crc_mismatch_is_detected() {
        let path = temp_corpus("badindex.aosc");
        let mut w = CorpusWriter::create(&path, Telemetry::disabled()).expect("create");
        w.record("x", "", sample_ops(8).into_iter()).unwrap();
        w.finish().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 6] ^= 0x01; // inside the index bytes, before its CRC
        std::fs::write(&path, &bytes).unwrap();
        let err = CorpusReader::open(&path, Telemetry::disabled()).unwrap_err();
        assert!(err.to_string().contains("index CRC"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The zlib convention's canonical check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn garbage_file_is_corruption_not_panic() {
        let path = temp_corpus("garbage.aosc");
        std::fs::write(&path, b"this is not a corpus at all").unwrap();
        let err = CorpusReader::open(&path, Telemetry::disabled()).unwrap_err();
        assert!(matches!(err, AosError::Corruption { .. }), "{err}");
        std::fs::remove_file(&path).ok();
    }
}
