//! Call-site instrumentation: what each system's compiler inserts.
//!
//! These expansions are the trace-level equivalent of the paper's LLVM
//! passes (`AOS-opt-pass` + `AOS-backend-pass`, §IV-B): they append the
//! *extra* µops each configuration executes at allocation sites, free
//! sites, memory accesses, pointer arithmetic and function boundaries.
//! The base work (the allocator's own loads/stores, the access itself)
//! is emitted by the workload generator for every configuration alike.

use crate::{Op, SafetyConfig};

/// Instrumentation after `malloc` returns (paper Fig. 7a; Watchdog per
/// Fig. 5a ¬). `signed_ptr` is the pointer *after* signing — for
/// non-AOS configs pass the raw pointer.
pub fn malloc_site(config: SafetyConfig, signed_ptr: u64, size: u64, out: &mut Vec<Op>) {
    match config {
        SafetyConfig::Baseline => {}
        SafetyConfig::Watchdog => {
            // key = unique_id++; lock = new_lock(); *lock = key;
            // id = (key, lock) into the extended register.
            out.push(Op::IntAlu);
            out.push(Op::IntAlu);
            out.push(Op::Store {
                pointer: crate::watchdog::lock_address(signed_ptr),
                bytes: 8,
            });
            out.push(Op::IntAlu);
        }
        SafetyConfig::Pa => {
            // PARTS signs the new data pointer (pacda).
            out.push(Op::PacCrypto);
        }
        SafetyConfig::Aos | SafetyConfig::PaAos => {
            out.push(Op::Pacma {
                pointer: signed_ptr,
                size,
            });
            out.push(Op::BndStr {
                pointer: signed_ptr,
                size,
            });
        }
    }
}

/// Instrumentation *before* the `free` body runs (Fig. 7b lines 1–2).
pub fn free_site_pre(config: SafetyConfig, signed_ptr: u64, out: &mut Vec<Op>) {
    match config {
        SafetyConfig::Baseline => {}
        SafetyConfig::Watchdog => {
            // *(id.lock) = INVALID; add_free_list(lock).
            out.push(Op::Store {
                pointer: crate::watchdog::lock_address(signed_ptr),
                bytes: 8,
            });
            out.push(Op::IntAlu);
        }
        SafetyConfig::Pa => {
            // Authenticate before the pointer is used by free().
            out.push(Op::PacCrypto);
        }
        SafetyConfig::Aos | SafetyConfig::PaAos => {
            out.push(Op::BndClr {
                pointer: signed_ptr,
            });
            out.push(Op::Xpacm);
        }
    }
}

/// Instrumentation *after* the `free` body (Fig. 7b line 4):
/// re-signing locks the dangling pointer.
pub fn free_site_post(config: SafetyConfig, signed_ptr: u64, out: &mut Vec<Op>) {
    if config.uses_aos() {
        out.push(Op::Pacma {
            pointer: signed_ptr,
            size: 0, // xzr
        });
    }
}

/// Instrumentation accompanying every data load/store. For Watchdog
/// this is the check µop (Fig. 5a ® ¯); AOS needs nothing — the MCU
/// checks as a side effect of issue (§V-A).
pub fn access_site(config: SafetyConfig, pointer: u64, out: &mut Vec<Op>) {
    if config == SafetyConfig::Watchdog {
        out.push(Op::WdCheck { pointer });
    }
}

/// Instrumentation when a *pointer value* is loaded from or stored to
/// memory: Watchdog moves its 24-byte metadata through shadow space;
/// PA authenticates/signs (Fig. 13 context); PA+AOS uses the 1-cycle
/// `autm` because AOS pointers are already signed (§VII-B).
pub fn pointer_memop_site(config: SafetyConfig, pointer: u64, is_store: bool, out: &mut Vec<Op>) {
    match config {
        SafetyConfig::Baseline | SafetyConfig::Aos => {}
        SafetyConfig::Watchdog => out.push(Op::WdMeta { pointer, is_store }),
        SafetyConfig::Pa => out.push(Op::PacCrypto),
        SafetyConfig::PaAos => {
            if !is_store {
                // On-load authentication only; stores need no re-sign
                // because the pointer already carries its PAC.
                out.push(Op::Autm { pointer });
            }
        }
    }
}

/// Instrumentation at a function prologue (and, symmetrically, the
/// epilogue): PA signs/authenticates the return address (Fig. 3).
pub fn function_boundary(config: SafetyConfig, out: &mut Vec<Op>) {
    if config.uses_pa() {
        out.push(Op::PacCrypto);
    }
}

/// Instrumentation accompanying pointer arithmetic: Watchdog must copy
/// or select metadata between extended registers (Fig. 5a ° ±).
pub fn pointer_arith_site(config: SafetyConfig, out: &mut Vec<Op>) {
    if config == SafetyConfig::Watchdog {
        out.push(Op::IntAlu);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ops_for(f: impl Fn(&mut Vec<Op>)) -> Vec<Op> {
        let mut v = Vec::new();
        f(&mut v);
        v
    }

    #[test]
    fn baseline_adds_nothing_anywhere() {
        let c = SafetyConfig::Baseline;
        assert!(ops_for(|v| malloc_site(c, 0x10, 64, v)).is_empty());
        assert!(ops_for(|v| free_site_pre(c, 0x10, v)).is_empty());
        assert!(ops_for(|v| free_site_post(c, 0x10, v)).is_empty());
        assert!(ops_for(|v| access_site(c, 0x10, v)).is_empty());
        assert!(ops_for(|v| pointer_memop_site(c, 0x10, false, v)).is_empty());
        assert!(ops_for(|v| function_boundary(c, v)).is_empty());
        assert!(ops_for(|v| pointer_arith_site(c, v)).is_empty());
    }

    #[test]
    fn aos_malloc_matches_fig7a() {
        let ops = ops_for(|v| malloc_site(SafetyConfig::Aos, 0x20, 128, v));
        assert_eq!(
            ops,
            vec![
                Op::Pacma {
                    pointer: 0x20,
                    size: 128
                },
                Op::BndStr {
                    pointer: 0x20,
                    size: 128
                },
            ]
        );
    }

    #[test]
    fn aos_free_matches_fig7b() {
        let pre = ops_for(|v| free_site_pre(SafetyConfig::Aos, 0x20, v));
        assert_eq!(pre, vec![Op::BndClr { pointer: 0x20 }, Op::Xpacm]);
        let post = ops_for(|v| free_site_post(SafetyConfig::Aos, 0x20, v));
        assert_eq!(
            post,
            vec![Op::Pacma {
                pointer: 0x20,
                size: 0
            }]
        );
    }

    #[test]
    fn aos_accesses_need_no_extra_instructions() {
        assert!(ops_for(|v| access_site(SafetyConfig::Aos, 0x20, v)).is_empty());
        assert!(ops_for(|v| access_site(SafetyConfig::PaAos, 0x20, v)).is_empty());
    }

    #[test]
    fn watchdog_checks_every_access() {
        let ops = ops_for(|v| access_site(SafetyConfig::Watchdog, 0x20, v));
        assert_eq!(ops, vec![Op::WdCheck { pointer: 0x20 }]);
        let arith = ops_for(|v| pointer_arith_site(SafetyConfig::Watchdog, v));
        assert_eq!(arith.len(), 1);
    }

    #[test]
    fn watchdog_moves_metadata_on_pointer_memops() {
        let ops = ops_for(|v| pointer_memop_site(SafetyConfig::Watchdog, 0x20, true, v));
        assert_eq!(
            ops,
            vec![Op::WdMeta {
                pointer: 0x20,
                is_store: true
            }]
        );
    }

    #[test]
    fn pa_signs_function_boundaries_and_pointer_loads() {
        assert_eq!(
            ops_for(|v| function_boundary(SafetyConfig::Pa, v)),
            vec![Op::PacCrypto]
        );
        assert_eq!(
            ops_for(|v| pointer_memop_site(SafetyConfig::Pa, 0x20, false, v)),
            vec![Op::PacCrypto]
        );
    }

    #[test]
    fn pa_aos_uses_cheap_autm_on_loads_only() {
        let load = ops_for(|v| pointer_memop_site(SafetyConfig::PaAos, 0x20, false, v));
        assert_eq!(load, vec![Op::Autm { pointer: 0x20 }]);
        let store = ops_for(|v| pointer_memop_site(SafetyConfig::PaAos, 0x20, true, v));
        assert!(store.is_empty(), "already-signed pointers stored as-is");
        assert_eq!(
            ops_for(|v| function_boundary(SafetyConfig::PaAos, v)),
            vec![Op::PacCrypto]
        );
    }

    #[test]
    fn watchdog_malloc_free_touch_lock_locations() {
        let m = ops_for(|v| malloc_site(SafetyConfig::Watchdog, 0x4000, 64, v));
        assert!(m.iter().any(|o| matches!(o, Op::Store { .. })));
        let f = ops_for(|v| free_site_pre(SafetyConfig::Watchdog, 0x4000, v));
        assert!(f.iter().any(|o| matches!(o, Op::Store { .. })));
        assert!(ops_for(|v| free_site_post(SafetyConfig::Watchdog, 0x4000, v)).is_empty());
    }
}
