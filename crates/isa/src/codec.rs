//! A compact binary codec for dynamic traces.
//!
//! Lets users capture a generated (or custom) µop stream once and
//! replay it against different machine configurations — the workflow
//! gem5 users know as trace capture/replay. The format is
//! self-describing: a magic/version header, a metadata string (e.g.
//! the workload and system that produced the trace), then one record
//! per op with a tag byte and little-endian operands.

use std::io::{self, Read, Write};

use aos_util::AosError;

use crate::Op;

/// File magic: "AOST".
const MAGIC: [u8; 4] = *b"AOST";
/// Format version.
const VERSION: u16 = 1;

// Op tags.
const TAG_INT_ALU: u8 = 0;
const TAG_INT_MUL: u8 = 1;
const TAG_FP_ALU: u8 = 2;
const TAG_BRANCH: u8 = 3;
const TAG_LOAD: u8 = 4;
const TAG_STORE: u8 = 5;
const TAG_PACMA: u8 = 6;
const TAG_XPACM: u8 = 7;
const TAG_AUTM: u8 = 8;
const TAG_PAC_CRYPTO: u8 = 9;
const TAG_BNDSTR: u8 = 10;
const TAG_BNDCLR: u8 = 11;
const TAG_WDCHECK: u8 = 12;
const TAG_WDMETA: u8 = 13;

/// Writes a trace: header, metadata, ops; returns the op count.
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
///
/// # Examples
///
/// ```
/// use aos_isa::{codec, Op};
/// let ops = vec![Op::IntAlu, Op::Load { pointer: 0x40, bytes: 8, chained: false }];
/// let mut buf = Vec::new();
/// codec::write_trace(&mut buf, "demo", ops.iter().copied())?;
/// let (meta, decoded) = codec::read_trace(&buf[..])?;
/// assert_eq!(meta, "demo");
/// assert_eq!(decoded, ops);
/// # Ok::<(), std::io::Error>(())
/// ```
pub fn write_trace<W: Write>(
    mut writer: W,
    metadata: &str,
    ops: impl Iterator<Item = Op>,
) -> io::Result<u64> {
    writer.write_all(&MAGIC)?;
    writer.write_all(&VERSION.to_le_bytes())?;
    let meta = metadata.as_bytes();
    writer.write_all(&(meta.len() as u32).to_le_bytes())?;
    writer.write_all(meta)?;
    let mut count = 0u64;
    for op in ops {
        write_op(&mut writer, &op)?;
        count += 1;
    }
    Ok(count)
}

fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Writes one op record (tag byte + little-endian operands) — the
/// unit encoding shared by whole-trace files and the corpus store's
/// CRC-framed blocks.
pub(crate) fn write_op<W: Write>(w: &mut W, op: &Op) -> io::Result<()> {
    match *op {
        Op::IntAlu => w.write_all(&[TAG_INT_ALU]),
        Op::IntMul => w.write_all(&[TAG_INT_MUL]),
        Op::FpAlu => w.write_all(&[TAG_FP_ALU]),
        Op::Branch {
            pc,
            taken,
            mispredicted,
        } => {
            w.write_all(&[TAG_BRANCH, taken as u8, mispredicted as u8])?;
            write_u64(w, pc)
        }
        Op::Load {
            pointer,
            bytes,
            chained,
        } => {
            w.write_all(&[TAG_LOAD, chained as u8])?;
            w.write_all(&bytes.to_le_bytes())?;
            write_u64(w, pointer)
        }
        Op::Store { pointer, bytes } => {
            w.write_all(&[TAG_STORE])?;
            w.write_all(&bytes.to_le_bytes())?;
            write_u64(w, pointer)
        }
        Op::Pacma { pointer, size } => {
            w.write_all(&[TAG_PACMA])?;
            write_u64(w, pointer)?;
            write_u64(w, size)
        }
        Op::Xpacm => w.write_all(&[TAG_XPACM]),
        Op::Autm { pointer } => {
            w.write_all(&[TAG_AUTM])?;
            write_u64(w, pointer)
        }
        Op::PacCrypto => w.write_all(&[TAG_PAC_CRYPTO]),
        Op::BndStr { pointer, size } => {
            w.write_all(&[TAG_BNDSTR])?;
            write_u64(w, pointer)?;
            write_u64(w, size)
        }
        Op::BndClr { pointer } => {
            w.write_all(&[TAG_BNDCLR])?;
            write_u64(w, pointer)
        }
        Op::WdCheck { pointer } => {
            w.write_all(&[TAG_WDCHECK])?;
            write_u64(w, pointer)
        }
        Op::WdMeta { pointer, is_store } => {
            w.write_all(&[TAG_WDMETA, is_store as u8])?;
            write_u64(w, pointer)
        }
    }
}

fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> io::Result<bool> {
    // Distinguish clean EOF (no bytes) from a truncated record.
    let mut first = [0u8; 1];
    match r.read(&mut first)? {
        0 => return Ok(false),
        1 => buf[0] = first[0],
        _ => unreachable!("read of 1 byte"),
    }
    r.read_exact(&mut buf[1..])?;
    Ok(true)
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Reads a whole trace back: `(metadata, ops)`.
///
/// # Errors
///
/// Fails on bad magic, unsupported version, unknown tags or truncated
/// records, as well as on underlying I/O errors.
pub fn read_trace<R: Read>(mut reader: R) -> io::Result<(String, Vec<Op>)> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(bad("not an AOS trace (bad magic)"));
    }
    let mut version = [0u8; 2];
    reader.read_exact(&mut version)?;
    if u16::from_le_bytes(version) != VERSION {
        return Err(bad("unsupported trace version"));
    }
    let meta_len = read_u32(&mut reader)? as usize;
    if meta_len > 1 << 20 {
        return Err(bad("metadata too large"));
    }
    let mut meta = vec![0u8; meta_len];
    reader.read_exact(&mut meta)?;
    let metadata =
        String::from_utf8(meta).map_err(|_| bad("metadata is not UTF-8"))?;

    let mut ops = Vec::new();
    let mut tag = [0u8; 1];
    while read_exact_or_eof(&mut reader, &mut tag)? {
        ops.push(read_op(tag[0], &mut reader)?);
    }
    Ok((metadata, ops))
}

/// Decodes one op record whose tag byte has already been consumed —
/// the counterpart of [`write_op`], shared with the corpus store.
pub(crate) fn read_op<R: Read>(tag: u8, reader: &mut R) -> io::Result<Op> {
    Ok(match tag {
        TAG_INT_ALU => Op::IntAlu,
        TAG_INT_MUL => Op::IntMul,
        TAG_FP_ALU => Op::FpAlu,
        TAG_BRANCH => {
            let mut flags = [0u8; 2];
            reader.read_exact(&mut flags)?;
            Op::Branch {
                taken: flags[0] != 0,
                mispredicted: flags[1] != 0,
                pc: read_u64(reader)?,
            }
        }
        TAG_LOAD => {
            let mut chained = [0u8; 1];
            reader.read_exact(&mut chained)?;
            let bytes = read_u32(reader)?;
            Op::Load {
                chained: chained[0] != 0,
                bytes,
                pointer: read_u64(reader)?,
            }
        }
        TAG_STORE => {
            let bytes = read_u32(reader)?;
            Op::Store {
                bytes,
                pointer: read_u64(reader)?,
            }
        }
        TAG_PACMA => Op::Pacma {
            pointer: read_u64(reader)?,
            size: read_u64(reader)?,
        },
        TAG_XPACM => Op::Xpacm,
        TAG_AUTM => Op::Autm {
            pointer: read_u64(reader)?,
        },
        TAG_PAC_CRYPTO => Op::PacCrypto,
        TAG_BNDSTR => Op::BndStr {
            pointer: read_u64(reader)?,
            size: read_u64(reader)?,
        },
        TAG_BNDCLR => Op::BndClr {
            pointer: read_u64(reader)?,
        },
        TAG_WDCHECK => Op::WdCheck {
            pointer: read_u64(reader)?,
        },
        TAG_WDMETA => {
            let mut is_store = [0u8; 1];
            reader.read_exact(&mut is_store)?;
            Op::WdMeta {
                is_store: is_store[0] != 0,
                pointer: read_u64(reader)?,
            }
        }
        other => return Err(bad(&format!("unknown op tag {other}"))),
    })
}

/// Reads a trace from a file, lifting failures into the shared
/// [`AosError`] taxonomy with the path as context: I/O problems become
/// [`AosError::Io`], malformed bytes become [`AosError::Corruption`].
///
/// # Errors
///
/// As above — every failure mode of [`read_trace`] plus `open`.
pub fn read_trace_file(path: &std::path::Path) -> Result<(String, Vec<Op>), AosError> {
    let file = std::fs::File::open(path).map_err(|e| AosError::Io {
        context: path.display().to_string(),
        detail: e.to_string(),
    })?;
    read_trace(std::io::BufReader::new(file)).map_err(|e| match e.kind() {
        io::ErrorKind::InvalidData => {
            AosError::corruption(format!("trace {}", path.display()), e)
        }
        _ => AosError::Io {
            context: path.display().to_string(),
            detail: e.to_string(),
        },
    })
}

/// Writes a trace to a file, lifting failures into [`AosError::Io`]
/// with the path as context; returns the op count like
/// [`write_trace`].
///
/// # Errors
///
/// Any I/O failure from `create` or the writes.
pub fn write_trace_file(
    path: &std::path::Path,
    metadata: &str,
    ops: impl Iterator<Item = Op>,
) -> Result<u64, AosError> {
    let io_err = |e: io::Error| AosError::Io {
        context: path.display().to_string(),
        detail: e.to_string(),
    };
    let file = std::fs::File::create(path).map_err(io_err)?;
    let mut writer = std::io::BufWriter::new(file);
    let count = write_trace(&mut writer, metadata, ops).map_err(io_err)?;
    writer.flush().map_err(io_err)?;
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ops() -> Vec<Op> {
        vec![
            Op::IntAlu,
            Op::IntMul,
            Op::FpAlu,
            Op::Branch {
                pc: 0x400100,
                taken: true,
                mispredicted: false,
            },
            Op::Load {
                pointer: 0xABCD_0000_1234,
                bytes: 8,
                chained: true,
            },
            Op::Store {
                pointer: 0x4000_0010,
                bytes: 4,
            },
            Op::Pacma {
                pointer: 0x4000_0010,
                size: 64,
            },
            Op::Xpacm,
            Op::Autm { pointer: 0x77 },
            Op::PacCrypto,
            Op::BndStr {
                pointer: 0x4000_0010,
                size: 64,
            },
            Op::BndClr { pointer: 0x4000_0010 },
            Op::WdCheck { pointer: 0x9 },
            Op::WdMeta {
                pointer: 0x9,
                is_store: true,
            },
        ]
    }

    #[test]
    fn roundtrip_every_op_kind() {
        let ops = sample_ops();
        let mut buf = Vec::new();
        let n = write_trace(&mut buf, "unit test", ops.iter().copied()).unwrap();
        assert_eq!(n, ops.len() as u64);
        let (meta, decoded) = read_trace(&buf[..]).unwrap();
        assert_eq!(meta, "unit test");
        assert_eq!(decoded, ops);
    }

    #[test]
    fn empty_trace_roundtrips() {
        let mut buf = Vec::new();
        write_trace(&mut buf, "", std::iter::empty()).unwrap();
        let (meta, decoded) = read_trace(&buf[..]).unwrap();
        assert!(meta.is_empty());
        assert!(decoded.is_empty());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let buf = b"NOPE\x01\x00\x00\x00\x00\x00".to_vec();
        let err = read_trace(&buf[..]).unwrap_err();
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn unsupported_version_is_rejected() {
        let mut buf = Vec::new();
        write_trace(&mut buf, "x", std::iter::empty()).unwrap();
        buf[4] = 99; // corrupt version
        assert!(read_trace(&buf[..]).is_err());
    }

    #[test]
    fn truncated_record_is_an_error_not_silence() {
        let mut buf = Vec::new();
        write_trace(
            &mut buf,
            "x",
            std::iter::once(Op::Load {
                pointer: 0x1234,
                bytes: 8,
                chained: false,
            }),
        )
        .unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_trace(&buf[..]).is_err());
    }

    #[test]
    fn unknown_tag_is_rejected() {
        let mut buf = Vec::new();
        write_trace(&mut buf, "x", std::iter::empty()).unwrap();
        buf.push(200);
        let err = read_trace(&buf[..]).unwrap_err();
        assert!(err.to_string().contains("tag"));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn op_strategy() -> impl Strategy<Value = Op> {
            prop_oneof![
                Just(Op::IntAlu),
                Just(Op::IntMul),
                Just(Op::FpAlu),
                Just(Op::Xpacm),
                Just(Op::PacCrypto),
                (any::<u64>(), any::<bool>(), any::<bool>()).prop_map(|(pc, taken, mispredicted)| {
                    Op::Branch { pc, taken, mispredicted }
                }),
                (any::<u64>(), any::<u32>(), any::<bool>()).prop_map(|(pointer, bytes, chained)| {
                    Op::Load { pointer, bytes, chained }
                }),
                (any::<u64>(), any::<u32>()).prop_map(|(pointer, bytes)| Op::Store { pointer, bytes }),
                (any::<u64>(), any::<u64>()).prop_map(|(pointer, size)| Op::Pacma { pointer, size }),
                any::<u64>().prop_map(|pointer| Op::Autm { pointer }),
                (any::<u64>(), any::<u64>()).prop_map(|(pointer, size)| Op::BndStr { pointer, size }),
                any::<u64>().prop_map(|pointer| Op::BndClr { pointer }),
                any::<u64>().prop_map(|pointer| Op::WdCheck { pointer }),
                (any::<u64>(), any::<bool>()).prop_map(|(pointer, is_store)| Op::WdMeta {
                    pointer,
                    is_store
                }),
            ]
        }

        proptest! {
            #[test]
            fn any_trace_roundtrips(ops in proptest::collection::vec(op_strategy(), 0..200)) {
                let mut buf = Vec::new();
                write_trace(&mut buf, "prop", ops.iter().copied()).unwrap();
                let (meta, decoded) = read_trace(&buf[..]).unwrap();
                prop_assert_eq!(meta, "prop");
                prop_assert_eq!(decoded, ops);
            }
        }
    }

    #[test]
    fn compact_encoding() {
        // IntAlu is 1 byte; the whole sample fits in well under
        // fixed-width-per-op encodings.
        let mut buf = Vec::new();
        write_trace(&mut buf, "", (0..1000).map(|_| Op::IntAlu)).unwrap();
        assert!(buf.len() < 1024 + 16, "1 byte per IntAlu: {}", buf.len());
    }

    #[test]
    fn file_helpers_roundtrip_and_type_their_errors() {
        let dir = std::env::temp_dir().join("aos-isa-codec-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.aost");
        let ops = sample_ops();
        let n = write_trace_file(&path, "file test", ops.iter().copied()).unwrap();
        assert_eq!(n, ops.len() as u64);
        let (meta, decoded) = read_trace_file(&path).unwrap();
        assert_eq!(meta, "file test");
        assert_eq!(decoded, ops);

        // A missing file is an I/O error carrying the path.
        let missing = dir.join("nope.aost");
        let err = read_trace_file(&missing).unwrap_err();
        assert!(matches!(err, AosError::Io { .. }), "{err}");
        assert!(err.to_string().contains("nope.aost"));

        // Garbage bytes are classified as corruption, not I/O.
        let garbage = dir.join("garbage.aost");
        std::fs::write(&garbage, b"NOT A TRACE").unwrap();
        let err = read_trace_file(&garbage).unwrap_err();
        assert!(matches!(err, AosError::Corruption { .. }), "{err}");
        assert!(err.to_string().contains("bad magic"));

        std::fs::remove_dir_all(&dir).ok();
    }
}
