//! Dynamic instruction streams and instrumentation for the five
//! evaluated systems.
//!
//! The paper compares Baseline, Watchdog, PA, AOS and PA+AOS builds of
//! each workload. The only *architectural* difference between those
//! builds is which instructions appear in the dynamic stream: AOS adds
//! `pacma`/`bndstr`/`bndclr`/`xpacm` around `malloc`/`free` (Fig. 7),
//! Watchdog adds check and metadata-propagation µops (Fig. 5a), PA adds
//! return-address and pointer signing (Fig. 3, Fig. 13). This crate
//! defines the micro-op vocabulary ([`Op`]), the system selector
//! ([`SafetyConfig`]), the call-site expansions ([`expand`]), the
//! Watchdog metadata addressing ([`watchdog`]) and the instruction-mix
//! accounting used for Fig. 16 ([`InstMix`]).
//!
//! # Examples
//!
//! ```
//! use aos_isa::{expand, Op, SafetyConfig};
//!
//! let mut ops = Vec::new();
//! expand::malloc_site(SafetyConfig::Aos, 0x4000_0010, 64, &mut ops);
//! assert!(matches!(ops[0], Op::Pacma { .. }));
//! assert!(matches!(ops[1], Op::BndStr { .. }));
//! ```

pub mod codec;
pub mod corpus;
pub mod expand;
mod mix;
mod op;
#[cfg(feature = "proptest-support")]
pub mod strategy;
pub mod stream;
pub mod watchdog;

pub use mix::InstMix;
pub use op::{MemoryRef, Op};

/// The five system configurations of the evaluation (§VIII).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SafetyConfig {
    /// No security features.
    #[default]
    Baseline,
    /// Watchdog: fat-pointer bounds + UAF checking with explicit check
    /// µops and in-memory lock locations.
    Watchdog,
    /// PARTS-style pointer integrity: return-address signing plus
    /// on-load data-pointer authentication.
    Pa,
    /// The paper's contribution: PAC-indexed bounds checking in the
    /// MCU.
    Aos,
    /// AOS integrated with PA pointer integrity (§VII-B).
    PaAos,
}

impl SafetyConfig {
    /// All five configurations, in the order the figures plot them.
    pub const ALL: [SafetyConfig; 5] = [
        SafetyConfig::Baseline,
        SafetyConfig::Watchdog,
        SafetyConfig::Pa,
        SafetyConfig::Aos,
        SafetyConfig::PaAos,
    ];

    /// Whether this configuration signs heap pointers and bounds-checks
    /// them in the MCU.
    pub fn uses_aos(self) -> bool {
        matches!(self, SafetyConfig::Aos | SafetyConfig::PaAos)
    }

    /// Whether this configuration adds PA pointer-integrity signing.
    pub fn uses_pa(self) -> bool {
        matches!(self, SafetyConfig::Pa | SafetyConfig::PaAos)
    }
}

impl std::fmt::Display for SafetyConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            SafetyConfig::Baseline => "Baseline",
            SafetyConfig::Watchdog => "Watchdog",
            SafetyConfig::Pa => "PA",
            SafetyConfig::Aos => "AOS",
            SafetyConfig::PaAos => "PA+AOS",
        };
        write!(f, "{name}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_capabilities() {
        assert!(!SafetyConfig::Baseline.uses_aos());
        assert!(!SafetyConfig::Baseline.uses_pa());
        assert!(SafetyConfig::Aos.uses_aos());
        assert!(!SafetyConfig::Aos.uses_pa());
        assert!(SafetyConfig::PaAos.uses_aos());
        assert!(SafetyConfig::PaAos.uses_pa());
        assert!(SafetyConfig::Pa.uses_pa());
        assert!(!SafetyConfig::Watchdog.uses_aos());
    }

    #[test]
    fn display_names_match_figures() {
        let names: Vec<String> = SafetyConfig::ALL.iter().map(|c| c.to_string()).collect();
        assert_eq!(names, ["Baseline", "Watchdog", "PA", "AOS", "PA+AOS"]);
    }
}
