//! Streaming op-pipeline adapters: compose trace producers,
//! transformers and consumers without ever materializing a `Vec<Op>`.
//!
//! The paper's claim is *always-on* enforcement over 3-billion-
//! instruction SPEC windows; a pipeline that collects every trace into
//! memory caps the window it can afford at `O(trace)` RSS per worker.
//! Everything in this module is `O(window)`: an [`OpStream`] is any
//! `Iterator<Item = Op>`, and the adapters below buffer at most a
//! fixed number of ops regardless of trace length —
//!
//! - [`InsertAt`] / [`ReplaceAt`] — positional single-op splices
//!   (the streaming form of the fault injectors' trace rewrites);
//! - [`SpliceMany`] — the multi-edit generalization used by the
//!   adversarial scenario engine: any number of positional
//!   insert/replace edits applied in one pass, buffering only the
//!   un-emitted edit ops;
//! - [`Lookahead`] — a bounded lookahead window over a stream, used
//!   by the use-after-free planner that must prove no same-PAC
//!   reallocation lands inside the ROB-sized retirement window;
//! - [`Metered`] — transparent op counting plus the
//!   [`BufferedOps`] high-water mark, which is how the campaign
//!   report's `peak_trace_bytes` column is measured rather than
//!   asserted.
//!
//! # Examples
//!
//! ```
//! use aos_isa::stream::{BufferedOps, OpStream};
//! use aos_isa::Op;
//!
//! // Splice one op into a stream at index 2, without collecting it.
//! let base = std::iter::repeat(Op::IntAlu).take(4);
//! let spliced: Vec<Op> = base.insert_at(2, Op::FpAlu).collect();
//! assert_eq!(spliced.len(), 5);
//! assert_eq!(spliced[2], Op::FpAlu);
//!
//! // Meter a stream while a consumer drains it.
//! let mut stream = std::iter::repeat(Op::IntAlu).take(1000).metered();
//! for _op in &mut stream {}
//! assert_eq!(stream.ops(), 1000);
//! assert_eq!(stream.peak_buffered_ops(), 0, "a plain iterator buffers nothing");
//! ```

use std::collections::VecDeque;

use aos_util::{Counter, Telemetry};

use crate::Op;

/// Struct-of-arrays batch of ops: the unit of transfer on the
/// pipeline's batch-native fast path.
///
/// Every [`Op`] round-trips losslessly through four parallel arrays —
/// a kind byte, two 64-bit payload words and a flag byte — so a batch
/// costs 18 bytes per op instead of `size_of::<Op>()` and refilling
/// touches four dense arrays instead of chasing an enum through an
/// iterator chain per op. The arrays are allocated once at
/// construction (a small bump arena) and reused across refills via
/// [`OpBatch::clear`], so steady-state refills never allocate.
#[derive(Debug, Clone)]
pub struct OpBatch {
    kinds: Vec<u8>,
    arg_a: Vec<u64>,
    arg_b: Vec<u64>,
    flags: Vec<u8>,
    limit: usize,
}

const K_INT_ALU: u8 = 0;
const K_INT_MUL: u8 = 1;
const K_FP_ALU: u8 = 2;
const K_BRANCH: u8 = 3;
const K_LOAD: u8 = 4;
const K_STORE: u8 = 5;
const K_PACMA: u8 = 6;
const K_XPACM: u8 = 7;
const K_AUTM: u8 = 8;
const K_PAC_CRYPTO: u8 = 9;
const K_BND_STR: u8 = 10;
const K_BND_CLR: u8 = 11;
const K_WD_CHECK: u8 = 12;
const K_WD_META: u8 = 13;

/// First boolean payload: `taken` / `chained` / `is_store`.
const F_A: u8 = 1;
/// Second boolean payload: `mispredicted`.
const F_B: u8 = 2;

#[inline]
fn encode_op(op: Op) -> (u8, u64, u64, u8) {
    match op {
        Op::IntAlu => (K_INT_ALU, 0, 0, 0),
        Op::IntMul => (K_INT_MUL, 0, 0, 0),
        Op::FpAlu => (K_FP_ALU, 0, 0, 0),
        Op::Branch {
            pc,
            taken,
            mispredicted,
        } => (
            K_BRANCH,
            pc,
            0,
            (u8::from(taken) * F_A) | (u8::from(mispredicted) * F_B),
        ),
        Op::Load {
            pointer,
            bytes,
            chained,
        } => (K_LOAD, pointer, u64::from(bytes), u8::from(chained) * F_A),
        Op::Store { pointer, bytes } => (K_STORE, pointer, u64::from(bytes), 0),
        Op::Pacma { pointer, size } => (K_PACMA, pointer, size, 0),
        Op::Xpacm => (K_XPACM, 0, 0, 0),
        Op::Autm { pointer } => (K_AUTM, pointer, 0, 0),
        Op::PacCrypto => (K_PAC_CRYPTO, 0, 0, 0),
        Op::BndStr { pointer, size } => (K_BND_STR, pointer, size, 0),
        Op::BndClr { pointer } => (K_BND_CLR, pointer, 0, 0),
        Op::WdCheck { pointer } => (K_WD_CHECK, pointer, 0, 0),
        Op::WdMeta { pointer, is_store } => (K_WD_META, pointer, 0, u8::from(is_store) * F_A),
    }
}

#[inline]
fn decode_op(kind: u8, a: u64, b: u64, f: u8) -> Op {
    match kind {
        K_INT_ALU => Op::IntAlu,
        K_INT_MUL => Op::IntMul,
        K_FP_ALU => Op::FpAlu,
        K_BRANCH => Op::Branch {
            pc: a,
            taken: f & F_A != 0,
            mispredicted: f & F_B != 0,
        },
        K_LOAD => Op::Load {
            pointer: a,
            bytes: b as u32,
            chained: f & F_A != 0,
        },
        K_STORE => Op::Store {
            pointer: a,
            bytes: b as u32,
        },
        K_PACMA => Op::Pacma {
            pointer: a,
            size: b,
        },
        K_XPACM => Op::Xpacm,
        K_AUTM => Op::Autm { pointer: a },
        K_PAC_CRYPTO => Op::PacCrypto,
        K_BND_STR => Op::BndStr {
            pointer: a,
            size: b,
        },
        K_BND_CLR => Op::BndClr { pointer: a },
        K_WD_CHECK => Op::WdCheck { pointer: a },
        K_WD_META => Op::WdMeta {
            pointer: a,
            is_store: f & F_A != 0,
        },
        _ => unreachable!("OpBatch only stores kinds written by encode_op"),
    }
}

impl OpBatch {
    /// Bytes per op in the struct-of-arrays layout.
    pub const BYTES_PER_OP: usize = 18;

    /// A batch holding up to `ops` ops, arrays allocated up front.
    pub fn with_capacity(ops: usize) -> Self {
        Self {
            kinds: Vec::with_capacity(ops),
            arg_a: Vec::with_capacity(ops),
            arg_b: Vec::with_capacity(ops),
            flags: Vec::with_capacity(ops),
            limit: ops,
        }
    }

    /// The refill limit (ops) set at construction.
    pub fn capacity(&self) -> usize {
        self.limit
    }

    /// Fixed arena size in bytes (capacity, not fill level) — the
    /// constant, scale-independent memory a batched pipeline stage
    /// adds on top of the stream's own `O(window)` buffers.
    pub fn arena_bytes(&self) -> usize {
        self.limit * Self::BYTES_PER_OP
    }

    /// Ops currently in the batch.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether the batch holds no ops.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Whether the batch reached its refill limit.
    pub fn is_full(&self) -> bool {
        self.kinds.len() >= self.limit
    }

    /// Empties the batch, keeping the arena for the next refill.
    pub fn clear(&mut self) {
        self.kinds.clear();
        self.arg_a.clear();
        self.arg_b.clear();
        self.flags.clear();
    }

    /// Appends one op.
    ///
    /// Callers respect [`OpBatch::is_full`]; the arena still grows
    /// (amortized, like `Vec`) if they do not, so a miscounting refill
    /// corrupts nothing.
    #[inline]
    pub fn push(&mut self, op: Op) {
        let (k, a, b, f) = encode_op(op);
        self.kinds.push(k);
        self.arg_a.push(a);
        self.arg_b.push(b);
        self.flags.push(f);
    }

    /// The op at `index`, decoded.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    #[inline]
    pub fn get(&self, index: usize) -> Op {
        decode_op(
            self.kinds[index],
            self.arg_a[index],
            self.arg_b[index],
            self.flags[index],
        )
    }

    /// Overwrites the op at `index` (the batched `replace_at` splice).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn set(&mut self, index: usize, op: Op) {
        let (k, a, b, f) = encode_op(op);
        self.kinds[index] = k;
        self.arg_a[index] = a;
        self.arg_b[index] = b;
        self.flags[index] = f;
    }

    /// Inserts an op at `index`, shifting everything after it (the
    /// batched `insert_at` splice — rare, so the `O(len)` shift across
    /// the four arrays is off the steady-state path).
    ///
    /// # Panics
    ///
    /// Panics if `index > len`.
    pub fn insert(&mut self, index: usize, op: Op) {
        let (k, a, b, f) = encode_op(op);
        self.kinds.insert(index, k);
        self.arg_a.insert(index, a);
        self.arg_b.insert(index, b);
        self.flags.insert(index, f);
    }

    /// Decoded ops in order.
    pub fn iter(&self) -> impl Iterator<Item = Op> + '_ {
        (0..self.len()).map(|i| self.get(i))
    }

    /// Runs `f` with the refill limit temporarily lowered by `slots`
    /// (never below the current fill level) — how a splicing adapter
    /// reserves room for its own op before delegating a refill.
    pub fn with_reserved<R>(&mut self, slots: usize, f: impl FnOnce(&mut OpBatch) -> R) -> R {
        let old = self.limit;
        self.limit = self.limit.saturating_sub(slots).max(self.len());
        let out = f(self);
        self.limit = old;
        out
    }
}

/// A stream component that buffers ops internally and can report its
/// high-water mark — the measurable `O(window)` memory proof for the
/// streaming pipeline. A component that holds no ops reports 0.
pub trait BufferedOps {
    /// The maximum number of ops this component (including anything it
    /// wraps) has held buffered at any point so far.
    fn peak_buffered_ops(&self) -> usize;
}

/// The streaming trace vocabulary: any iterator over [`Op`]s, plus the
/// adapter combinators of this module. Blanket-implemented, so every
/// producer — a `TraceGenerator`, a decoded trace file, a `Vec` being
/// drained — composes for free.
pub trait OpStream: Iterator<Item = Op> {
    /// Splices `op` into the stream so it is yielded at index `at`
    /// (everything from `at` onward shifts one position later). An
    /// `at` beyond the end of the stream appends the op.
    fn insert_at(self, at: usize, op: Op) -> InsertAt<Self>
    where
        Self: Sized,
    {
        InsertAt {
            inner: self,
            at,
            op: Some(op),
            index: 0,
        }
    }

    /// Replaces the op at index `at` with `op`, preserving stream
    /// length. A stream shorter than `at` is passed through unchanged.
    fn replace_at(self, at: usize, op: Op) -> ReplaceAt<Self>
    where
        Self: Sized,
    {
        ReplaceAt {
            inner: self,
            at,
            op: Some(op),
            index: 0,
        }
    }

    /// Applies a whole set of positional [`Splice`] edits in one
    /// streaming pass — the multi-edit generalization of
    /// [`OpStream::insert_at`] / [`OpStream::replace_at`] used by the
    /// adversarial scenario engine to compose attack chains. Edit
    /// sites are original-stream indices; see [`Splice`] for the
    /// exact per-site semantics.
    fn splice_many(self, edits: Vec<Splice>) -> SpliceMany<Self>
    where
        Self: Sized,
    {
        SpliceMany::new(self, edits)
    }

    /// Counts the ops that flow through, transparently.
    fn metered(self) -> Metered<Self>
    where
        Self: Sized,
    {
        Metered {
            inner: self,
            emitted: 0,
        }
    }

    /// Appends ops to `batch` until it is full or the stream ends and
    /// returns how many were added — so fewer than the available space
    /// means the stream is exhausted.
    ///
    /// This default is the universal *fallback*: one `next()` call per
    /// op, correct for every stream. Pipeline components that can do
    /// better implement [`BatchSource`], whose `refill_batch` is the
    /// batch-native fast path; [`PerOp`] bridges any plain stream into
    /// a `BatchSource` through this method (and reports itself
    /// non-native so the `batch_fallback_ops` counter exposes the
    /// degradation).
    fn next_batch(&mut self, batch: &mut OpBatch) -> usize {
        let mut added = 0;
        while !batch.is_full() {
            match self.next() {
                Some(op) => {
                    batch.push(op);
                    added += 1;
                }
                None => break,
            }
        }
        added
    }
}

impl<I: Iterator<Item = Op>> OpStream for I {}

/// The batch-native refill interface: fill an [`OpBatch`] wholesale
/// instead of being pulled one op at a time.
///
/// The contract matches [`OpStream::next_batch`]: append until the
/// batch is full or the stream ends, return the number appended, and
/// therefore signal exhaustion by returning less than the space that
/// was available. Implementations must yield exactly the op sequence
/// their `Iterator` impl would — the batched and per-op paths are
/// interchangeable bit for bit, which `tests/batch_equivalence.rs`
/// pins across every system.
pub trait BatchSource {
    /// Refills `batch` on the fast path. See the trait docs for the
    /// contract.
    fn refill_batch(&mut self, batch: &mut OpBatch) -> usize;

    /// Whether refills stay batch-native end to end. A chain reports
    /// `false` as soon as any stage degrades to per-op pulls, which
    /// the [`Batched`] driver surfaces as `batch_fallback_ops`.
    fn batch_native(&self) -> bool {
        true
    }
}

impl<S: BatchSource + ?Sized> BatchSource for &mut S {
    fn refill_batch(&mut self, batch: &mut OpBatch) -> usize {
        (**self).refill_batch(batch)
    }

    fn batch_native(&self) -> bool {
        (**self).batch_native()
    }
}

/// Bridges any plain [`OpStream`] into a [`BatchSource`] via the
/// per-op [`OpStream::next_batch`] fallback. Reports itself
/// non-native, so a pipeline that had to fall back is visible in the
/// `batch_fallback_ops` telemetry counter.
#[derive(Debug, Clone)]
pub struct PerOp<I>(pub I);

impl<I: Iterator<Item = Op>> Iterator for PerOp<I> {
    type Item = Op;

    fn next(&mut self) -> Option<Op> {
        self.0.next()
    }
}

impl<I: Iterator<Item = Op>> BatchSource for PerOp<I> {
    fn refill_batch(&mut self, batch: &mut OpBatch) -> usize {
        self.0.next_batch(batch)
    }

    fn batch_native(&self) -> bool {
        false
    }
}

impl<I: BufferedOps> BufferedOps for PerOp<I> {
    fn peak_buffered_ops(&self) -> usize {
        self.0.peak_buffered_ops()
    }
}

/// Drives a [`BatchSource`] as an ordinary op iterator: one reused
/// [`OpBatch`] arena, refilled when drained. The op sequence is
/// identical to iterating the source directly — only the refill
/// granularity changes — so a `Machine` fed through `Batched` produces
/// bit-identical `RunStats`.
///
/// When handed a telemetry handle, every refill records
/// `batch_ops_refilled` (and `batch_fallback_ops` for non-native
/// sources), which is how `aos stats` proves the fast path was taken.
#[derive(Debug)]
pub struct Batched<S> {
    source: S,
    batch: OpBatch,
    pos: usize,
    done: bool,
    peak_batch: usize,
    telemetry: Telemetry,
}

/// Default refill granularity for [`Batched`] drivers and the
/// double-buffered overlap runner: large enough to amortize refill
/// dispatch and keep generator and simulator each running long
/// cache-friendly bursts, small enough that an arena stays a fixed
/// few KiB regardless of trace length.
pub const DEFAULT_BATCH_OPS: usize = 1024;

impl<S: BatchSource> Batched<S> {
    /// Default refill granularity; see [`DEFAULT_BATCH_OPS`].
    pub const DEFAULT_BATCH_OPS: usize = DEFAULT_BATCH_OPS;

    /// Wraps `source` with a fresh arena of `batch_ops` ops.
    pub fn new(source: S, batch_ops: usize) -> Self {
        Self {
            source,
            batch: OpBatch::with_capacity(batch_ops.max(2)),
            pos: 0,
            done: false,
            peak_batch: 0,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Records refills into `telemetry` (`batch_ops_refilled` /
    /// `batch_fallback_ops`).
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The wrapped source.
    pub fn get_ref(&self) -> &S {
        &self.source
    }

    /// Unwraps back to the source.
    pub fn into_inner(self) -> S {
        self.source
    }

    fn refill(&mut self) -> bool {
        self.batch.clear();
        self.pos = 0;
        let n = self.source.refill_batch(&mut self.batch);
        if n == 0 {
            self.done = true;
            return false;
        }
        self.peak_batch = self.peak_batch.max(self.batch.len());
        self.telemetry.add(Counter::BatchOpsRefilled, n as u64);
        if !self.source.batch_native() {
            self.telemetry.add(Counter::BatchFallbackOps, n as u64);
        }
        true
    }
}

impl<S: BatchSource> Iterator for Batched<S> {
    type Item = Op;

    #[inline]
    fn next(&mut self) -> Option<Op> {
        if self.pos >= self.batch.len() && (self.done || !self.refill()) {
            return None;
        }
        let op = self.batch.get(self.pos);
        self.pos += 1;
        Some(op)
    }
}

impl<S: BufferedOps> BufferedOps for Batched<S> {
    fn peak_buffered_ops(&self) -> usize {
        // The arena's high-water mark counts: ops sitting in the batch
        // are buffered ops, fixed at the capacity chosen up front.
        self.source.peak_buffered_ops() + self.peak_batch
    }
}

/// Yields the wrapped stream with one extra op spliced in at a fixed
/// index. See [`OpStream::insert_at`]. Buffers exactly one op.
#[derive(Debug, Clone)]
pub struct InsertAt<I> {
    inner: I,
    at: usize,
    op: Option<Op>,
    index: usize,
}

impl<I> InsertAt<I> {
    /// The wrapped stream.
    pub fn get_ref(&self) -> &I {
        &self.inner
    }
}

impl<I: Iterator<Item = Op>> Iterator for InsertAt<I> {
    type Item = Op;

    fn next(&mut self) -> Option<Op> {
        if self.index == self.at {
            if let Some(op) = self.op.take() {
                self.index += 1;
                return Some(op);
            }
        }
        match self.inner.next() {
            Some(op) => {
                self.index += 1;
                Some(op)
            }
            // The splice point lies at (or past) the end: append.
            None => self.op.take().inspect(|_| self.index += 1),
        }
    }
}

impl<I: BufferedOps> BufferedOps for InsertAt<I> {
    fn peak_buffered_ops(&self) -> usize {
        // The pending splice op is this adapter's entire buffer.
        self.inner.peak_buffered_ops() + 1
    }
}

impl<I: BatchSource> BatchSource for InsertAt<I> {
    fn refill_batch(&mut self, batch: &mut OpBatch) -> usize {
        let start = batch.len();
        // Keep one slot free for the pending splice so inserting it
        // cannot overflow the refill limit.
        let reserve = usize::from(self.op.is_some());
        let space = batch.capacity().saturating_sub(start + reserve);
        let n = batch.with_reserved(reserve, |b| self.inner.refill_batch(b));
        let exhausted = n < space;
        let mut added = n;
        if let Some(op) = self.op.take() {
            debug_assert!(self.at >= self.index, "splice op would already be emitted");
            if self.at <= self.index + n {
                batch.insert(start + (self.at - self.index), op);
                added += 1;
            } else if exhausted {
                // The splice point lies past the end: append, exactly
                // like the per-op path.
                batch.push(op);
                added += 1;
            } else {
                self.op = Some(op);
            }
        }
        self.index += added;
        added
    }

    fn batch_native(&self) -> bool {
        self.inner.batch_native()
    }
}

/// Yields the wrapped stream with the op at one fixed index swapped
/// out. See [`OpStream::replace_at`]. Buffers exactly one op.
#[derive(Debug, Clone)]
pub struct ReplaceAt<I> {
    inner: I,
    at: usize,
    op: Option<Op>,
    index: usize,
}

impl<I> ReplaceAt<I> {
    /// The wrapped stream.
    pub fn get_ref(&self) -> &I {
        &self.inner
    }
}

impl<I: Iterator<Item = Op>> Iterator for ReplaceAt<I> {
    type Item = Op;

    fn next(&mut self) -> Option<Op> {
        let op = self.inner.next()?;
        let index = self.index;
        self.index += 1;
        if index == self.at {
            if let Some(replacement) = self.op.take() {
                return Some(replacement);
            }
        }
        Some(op)
    }
}

impl<I: BufferedOps> BufferedOps for ReplaceAt<I> {
    fn peak_buffered_ops(&self) -> usize {
        self.inner.peak_buffered_ops() + 1
    }
}

impl<I: BatchSource> BatchSource for ReplaceAt<I> {
    fn refill_batch(&mut self, batch: &mut OpBatch) -> usize {
        let start = batch.len();
        let n = self.inner.refill_batch(batch);
        if let Some(op) = self.op.take() {
            debug_assert!(self.at >= self.index, "replacement would already be emitted");
            if self.at < self.index + n {
                batch.set(start + (self.at - self.index), op);
            } else {
                self.op = Some(op);
            }
        }
        self.index += n;
        n
    }

    fn batch_native(&self) -> bool {
        self.inner.batch_native()
    }
}

/// One positional edit for [`SpliceMany`], addressed in *original*
/// stream indices (the coordinate space the fault planners report
/// their sites in, unaffected by earlier edits in the same set).
///
/// An insert edit emits `ops` immediately before the original op at
/// `at` — the ops are *yielded at* index `at`, exactly like
/// [`OpStream::insert_at`]. A replace edit emits `ops` *instead of*
/// the original op at `at` (an empty `ops` deletes it). Edits whose
/// `at` lies past the end of the stream append their ops in edit
/// order when they insert, and are dropped when they replace —
/// mirroring the single-op adapters' end-of-stream behavior.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Splice {
    /// Original-stream index the edit targets.
    pub at: usize,
    /// `true` to substitute for the op at `at`, `false` to insert
    /// before it.
    pub replace: bool,
    /// The ops to emit at the edit site.
    pub ops: Vec<Op>,
}

impl Splice {
    /// An insert edit: `ops` are yielded at `at`, the original op (and
    /// everything after it) shifts later.
    pub fn insert(at: usize, ops: Vec<Op>) -> Self {
        Splice {
            at,
            replace: false,
            ops,
        }
    }

    /// A replace edit: `ops` substitute for the original op at `at`.
    pub fn replace(at: usize, ops: Vec<Op>) -> Self {
        Splice {
            at,
            replace: true,
            ops,
        }
    }
}

/// Applies an arbitrary set of positional [`Splice`] edits in one
/// streaming pass. See [`OpStream::splice_many`].
///
/// Edits are applied in ascending `at` order (ties keep construction
/// order, so two edits at one site compose deterministically: each
/// edit's ops queue in turn, and the original op survives only if no
/// edit at that site replaces it). Buffered state is bounded by the
/// total op count of the not-yet-emitted edits — `O(edits)`, never
/// `O(trace)`.
#[derive(Debug, Clone)]
pub struct SpliceMany<I> {
    inner: I,
    edits: Vec<Splice>,
    next_edit: usize,
    pending: VecDeque<Op>,
    index: usize,
    edit_ops_total: usize,
}

impl<I> SpliceMany<I> {
    /// Wraps `inner` with `edits`, sorting them by site (stable, so
    /// same-site edits keep their given order).
    pub fn new(inner: I, mut edits: Vec<Splice>) -> Self {
        edits.sort_by_key(|e| e.at);
        let edit_ops_total: usize = edits.iter().map(|e| e.ops.len()).sum();
        SpliceMany {
            inner,
            edits,
            next_edit: 0,
            pending: VecDeque::new(),
            index: 0,
            edit_ops_total,
        }
    }

    /// The wrapped stream.
    pub fn get_ref(&self) -> &I {
        &self.inner
    }

    /// Queues every edit targeting the current original index; returns
    /// whether one of them replaces the original op.
    fn take_edits_here(&mut self) -> bool {
        let mut replaced = false;
        while let Some(edit) = self.edits.get(self.next_edit) {
            if edit.at != self.index {
                break;
            }
            replaced |= edit.replace;
            self.pending.extend(edit.ops.iter().copied());
            self.next_edit += 1;
        }
        replaced
    }

    /// Queues the tail edits once the stream has ended: inserts
    /// append their ops, replaces have no target and are dropped.
    fn take_tail_edits(&mut self) {
        while let Some(edit) = self.edits.get(self.next_edit) {
            if !edit.replace {
                self.pending.extend(edit.ops.iter().copied());
            }
            self.next_edit += 1;
        }
    }
}

impl<I: Iterator<Item = Op>> Iterator for SpliceMany<I> {
    type Item = Op;

    fn next(&mut self) -> Option<Op> {
        loop {
            if let Some(op) = self.pending.pop_front() {
                return Some(op);
            }
            let replaced = self.take_edits_here();
            match self.inner.next() {
                Some(op) => {
                    self.index += 1;
                    if !replaced {
                        self.pending.push_back(op);
                    }
                    // An empty-ops replace deleted the op: loop on.
                }
                None => {
                    self.take_tail_edits();
                    if self.pending.is_empty() {
                        return None;
                    }
                }
            }
        }
    }
}

impl<I: BufferedOps> BufferedOps for SpliceMany<I> {
    fn peak_buffered_ops(&self) -> usize {
        // Upper bound: every edit op is buffered until emitted.
        self.inner.peak_buffered_ops() + self.edit_ops_total
    }
}

impl<I: Iterator<Item = Op> + BatchSource> BatchSource for SpliceMany<I> {
    fn refill_batch(&mut self, batch: &mut OpBatch) -> usize {
        // Fast path: no queued ops and no edit can land inside this
        // refill window (the inner source can add at most `space`
        // ops), so the whole refill is a pass-through.
        let space = batch.capacity().saturating_sub(batch.len());
        let clear_of_edits = self.next_edit == self.edits.len()
            || self.edits[self.next_edit].at >= self.index + space;
        if self.pending.is_empty() && clear_of_edits {
            let n = self.inner.refill_batch(batch);
            self.index += n;
            // n == 0 with edits still pending means the stream ended
            // short of a splice site: fall through so the per-op path
            // runs the end-of-stream append rule.
            if n > 0 || self.next_edit == self.edits.len() {
                return n;
            }
        }
        // Near an edit site (or at end-of-stream with tail edits):
        // refill per op so all splice bookkeeping stays in `next`.
        let mut added = 0;
        while !batch.is_full() {
            match self.next() {
                Some(op) => {
                    batch.push(op);
                    added += 1;
                }
                None => break,
            }
        }
        added
    }

    fn batch_native(&self) -> bool {
        self.inner.batch_native()
    }
}

/// Transparent op counter; composes with [`BufferedOps`] so a consumer
/// can drain a stream through `&mut` and read both the op count and
/// the pipeline's peak buffer afterwards.
#[derive(Debug, Clone)]
pub struct Metered<I> {
    inner: I,
    emitted: u64,
}

impl<I> Metered<I> {
    /// Ops yielded so far.
    pub fn ops(&self) -> u64 {
        self.emitted
    }

    /// The wrapped stream.
    pub fn get_ref(&self) -> &I {
        &self.inner
    }
}

impl<I: Iterator<Item = Op>> Iterator for Metered<I> {
    type Item = Op;

    fn next(&mut self) -> Option<Op> {
        let op = self.inner.next()?;
        self.emitted += 1;
        Some(op)
    }
}

impl<I: BufferedOps> BufferedOps for Metered<I> {
    fn peak_buffered_ops(&self) -> usize {
        self.inner.peak_buffered_ops()
    }
}

impl<I: BatchSource> BatchSource for Metered<I> {
    fn refill_batch(&mut self, batch: &mut OpBatch) -> usize {
        let n = self.inner.refill_batch(batch);
        self.emitted += n as u64;
        n
    }

    fn batch_native(&self) -> bool {
        self.inner.batch_native()
    }
}

/// Iterators with no internal storage (slices being copied, ranges,
/// repeat/take chains) buffer nothing. This blanket-free impl covers
/// the common leaf producers used in tests and doc examples.
impl<'a, T: Iterator<Item = &'a Op>> BufferedOps for std::iter::Copied<T> {
    fn peak_buffered_ops(&self) -> usize {
        0
    }
}

impl<I> BufferedOps for std::iter::Take<I> {
    fn peak_buffered_ops(&self) -> usize {
        0
    }
}

impl<T> BufferedOps for std::iter::Repeat<T> {
    fn peak_buffered_ops(&self) -> usize {
        0
    }
}

/// A bounded lookahead window over an op stream.
///
/// [`Lookahead::next_op`] yields `(index, op)` pairs in order; after a
/// yield, [`Lookahead::window`] exposes up to `window` *following*
/// ops — exactly `trace[i + 1 ..= i + window]`, truncated at the end
/// of the stream. The buffer never holds more than `window + 1` ops,
/// so scanning a trace for anchors is `O(window)` memory no matter how
/// long the trace runs.
#[derive(Debug)]
pub struct Lookahead<I: Iterator<Item = Op>> {
    inner: I,
    buf: VecDeque<Op>,
    window: usize,
    index: usize,
    peak: usize,
    exhausted: bool,
    /// Carry-over arena for batched refills: ops pulled from the inner
    /// stream's batch-native path that did not fit the window yet.
    /// Zero-capacity (no allocation) unless [`Lookahead::batched`]
    /// built this instance.
    scratch: OpBatch,
    scratch_pos: usize,
}

impl<I: Iterator<Item = Op>> Lookahead<I> {
    /// Wraps `inner` with a lookahead of `window` ops.
    pub fn new(inner: I, window: usize) -> Self {
        Self {
            inner,
            buf: VecDeque::with_capacity(window + 1),
            window,
            index: 0,
            peak: 0,
            exhausted: false,
            scratch: OpBatch::with_capacity(0),
            scratch_pos: 0,
        }
    }

    fn fill(&mut self) {
        while self.buf.len() < self.window + 1 {
            // Carried-over ops from a batched refill come first — they
            // are older than anything still in the inner stream.
            if self.scratch_pos < self.scratch.len() {
                self.buf.push_back(self.scratch.get(self.scratch_pos));
                self.scratch_pos += 1;
                continue;
            }
            if self.exhausted {
                break;
            }
            match self.inner.next() {
                Some(op) => self.buf.push_back(op),
                None => self.exhausted = true,
            }
        }
        self.note_peak();
    }

    fn note_peak(&mut self) {
        let carried = self.scratch.len() - self.scratch_pos;
        self.peak = self.peak.max(self.buf.len() + carried);
    }

    /// The next op and its stream index, or `None` at end of stream.
    pub fn next_op(&mut self) -> Option<(usize, Op)> {
        self.fill();
        let op = self.buf.pop_front()?;
        let index = self.index;
        self.index += 1;
        Some((index, op))
    }

    /// The buffered lookahead: the ops that *follow* the one most
    /// recently yielded by [`Lookahead::next_op`], in stream order.
    pub fn window(&self) -> impl Iterator<Item = &Op> {
        self.buf.iter()
    }

    /// Ops consumed from the underlying stream so far (the total
    /// stream length once `next_op` has returned `None`).
    pub fn consumed(&self) -> usize {
        self.index
    }
}

impl<I: Iterator<Item = Op> + BatchSource> Lookahead<I> {
    /// Like [`Lookahead::new`], but window refills go through the
    /// inner stream's batch-native path, `batch_ops` at a time, into a
    /// carry-over arena drained as the window advances. Yields exactly
    /// the sequence (and window contents) of the per-op constructor.
    pub fn batched(inner: I, window: usize, batch_ops: usize) -> Self {
        let mut look = Self::new(inner, window);
        look.scratch = OpBatch::with_capacity(batch_ops.max(window + 1));
        look
    }

    fn fill_batched(&mut self) {
        loop {
            while self.scratch_pos < self.scratch.len() && self.buf.len() < self.window + 1 {
                self.buf.push_back(self.scratch.get(self.scratch_pos));
                self.scratch_pos += 1;
            }
            if self.exhausted || self.buf.len() > self.window {
                break;
            }
            self.scratch.clear();
            self.scratch_pos = 0;
            if self.inner.refill_batch(&mut self.scratch) == 0 {
                self.exhausted = true;
            }
        }
        self.note_peak();
    }

    /// [`Lookahead::next_op`] over the batch-native refill path.
    pub fn next_op_batched(&mut self) -> Option<(usize, Op)> {
        self.fill_batched();
        let op = self.buf.pop_front()?;
        let index = self.index;
        self.index += 1;
        Some((index, op))
    }
}

impl<I: Iterator<Item = Op>> BufferedOps for Lookahead<I> {
    fn peak_buffered_ops(&self) -> usize {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(n: usize) -> std::iter::Take<std::iter::Repeat<Op>> {
        std::iter::repeat(Op::IntAlu).take(n)
    }

    #[test]
    fn insert_at_matches_vec_splice() {
        for at in [0usize, 1, 3, 7, 8] {
            let streamed: Vec<Op> = ints(8).insert_at(at, Op::FpAlu).collect();
            let mut expected: Vec<Op> = ints(8).collect();
            expected.insert(at.min(8), Op::FpAlu);
            assert_eq!(streamed, expected, "at {at}");
        }
    }

    #[test]
    fn insert_past_the_end_appends() {
        let streamed: Vec<Op> = ints(3).insert_at(100, Op::FpAlu).collect();
        assert_eq!(streamed.len(), 4);
        assert_eq!(streamed[3], Op::FpAlu);
    }

    #[test]
    fn replace_at_swaps_exactly_one_op() {
        let streamed: Vec<Op> = ints(5).replace_at(2, Op::IntMul).collect();
        assert_eq!(streamed.len(), 5);
        assert_eq!(streamed[2], Op::IntMul);
        assert!(streamed.iter().filter(|o| **o == Op::IntMul).count() == 1);
        // Replacement index past the end: pass-through.
        let unchanged: Vec<Op> = ints(3).replace_at(9, Op::IntMul).collect();
        assert_eq!(unchanged, ints(3).collect::<Vec<_>>());
    }

    #[test]
    fn metered_counts_without_reordering() {
        let mut stream = ints(257).metered();
        let drained: Vec<Op> = (&mut stream).collect();
        assert_eq!(drained.len(), 257);
        assert_eq!(stream.ops(), 257);
    }

    #[test]
    fn lookahead_window_is_the_following_ops() {
        let trace: Vec<Op> = (0..10)
            .map(|i| Op::Load {
                pointer: i,
                bytes: 8,
                chained: false,
            })
            .collect();
        let mut look = Lookahead::new(trace.iter().copied(), 3);
        let (i, op) = look.next_op().unwrap();
        assert_eq!(i, 0);
        assert_eq!(op, trace[0]);
        let window: Vec<Op> = look.window().copied().collect();
        assert_eq!(window, trace[1..4], "window is trace[i+1 ..= i+3]");
        // Drain; the window truncates near the end instead of stalling.
        let mut last = 0;
        while let Some((i, _)) = look.next_op() {
            last = i;
            assert!(look.window().count() <= 3);
        }
        assert_eq!(last, 9);
        assert_eq!(look.consumed(), 10);
    }

    #[test]
    fn lookahead_buffer_is_bounded_by_window() {
        let mut look = Lookahead::new(ints(100_000), 256);
        while look.next_op().is_some() {}
        assert_eq!(look.consumed(), 100_000);
        assert!(
            look.peak_buffered_ops() <= 257,
            "peak {} exceeds the 256-op window",
            look.peak_buffered_ops()
        );
    }

    #[test]
    fn adapters_report_their_buffering() {
        let inserted = ints(4).insert_at(1, Op::FpAlu);
        assert_eq!(inserted.peak_buffered_ops(), 1);
        let metered = ints(4).metered();
        assert_eq!(metered.peak_buffered_ops(), 0);
    }

    fn every_op_variant() -> Vec<Op> {
        vec![
            Op::IntAlu,
            Op::IntMul,
            Op::FpAlu,
            Op::Branch {
                pc: 0x4321,
                taken: true,
                mispredicted: false,
            },
            Op::Branch {
                pc: u64::MAX,
                taken: false,
                mispredicted: true,
            },
            Op::Load {
                pointer: 0xdead_beef,
                bytes: 16,
                chained: true,
            },
            Op::Load {
                pointer: 0,
                bytes: u32::MAX,
                chained: false,
            },
            Op::Store {
                pointer: 0x8000_0000_0000_0001,
                bytes: 4,
            },
            Op::Pacma {
                pointer: 0x7777,
                size: 1 << 33,
            },
            Op::Xpacm,
            Op::Autm { pointer: 0x1234 },
            Op::PacCrypto,
            Op::BndStr {
                pointer: 0x4000_0000,
                size: 64,
            },
            Op::BndClr { pointer: 0x4000_0040 },
            Op::WdCheck { pointer: 0x5000 },
            Op::WdMeta {
                pointer: 0x5008,
                is_store: true,
            },
            Op::WdMeta {
                pointer: 0x5010,
                is_store: false,
            },
        ]
    }

    #[test]
    fn op_batch_roundtrips_every_variant() {
        let ops = every_op_variant();
        let mut batch = OpBatch::with_capacity(ops.len());
        for &op in &ops {
            batch.push(op);
        }
        assert_eq!(batch.len(), ops.len());
        assert!(batch.is_full());
        let decoded: Vec<Op> = batch.iter().collect();
        assert_eq!(decoded, ops);
        assert_eq!(batch.arena_bytes(), ops.len() * OpBatch::BYTES_PER_OP);
        batch.clear();
        assert!(batch.is_empty());
        assert_eq!(batch.capacity(), ops.len());
    }

    #[test]
    fn default_next_batch_drains_any_stream() {
        let ops = every_op_variant();
        let mut stream = ops.iter().copied();
        let mut batch = OpBatch::with_capacity(7);
        let mut collected = Vec::new();
        loop {
            batch.clear();
            let n = stream.next_batch(&mut batch);
            if n == 0 {
                break;
            }
            collected.extend(batch.iter());
        }
        assert_eq!(collected, ops);
    }

    #[test]
    fn batched_driver_matches_per_op_iteration() {
        let ops = every_op_variant();
        for cap in [2, 3, 7, 64] {
            let batched: Vec<Op> = Batched::new(PerOp(ops.iter().copied()), cap).collect();
            assert_eq!(batched, ops, "cap {cap}");
        }
    }

    #[test]
    fn insert_at_batched_matches_per_op_for_every_splice_point() {
        let base: Vec<Op> = every_op_variant();
        for at in 0..=base.len() + 2 {
            for cap in [2, 3, 5, 64] {
                let per_op: Vec<Op> = base.iter().copied().insert_at(at, Op::FpAlu).collect();
                let batched: Vec<Op> =
                    Batched::new(PerOp(base.iter().copied()).insert_at(at, Op::FpAlu), cap)
                        .collect();
                assert_eq!(batched, per_op, "at {at} cap {cap}");
            }
        }
    }

    #[test]
    fn replace_at_batched_matches_per_op() {
        let base: Vec<Op> = every_op_variant();
        for at in 0..=base.len() + 2 {
            for cap in [2, 5, 64] {
                let per_op: Vec<Op> = base.iter().copied().replace_at(at, Op::IntMul).collect();
                let batched: Vec<Op> =
                    Batched::new(PerOp(base.iter().copied()).replace_at(at, Op::IntMul), cap)
                        .collect();
                assert_eq!(batched, per_op, "at {at} cap {cap}");
            }
        }
    }

    /// Reference semantics for [`SpliceMany`]: a materialized rewrite
    /// over original indices, inserts before / replaces instead of the
    /// op at each site, insert tails appended, replace tails dropped.
    fn splice_reference(base: &[Op], edits: &[Splice]) -> Vec<Op> {
        let mut sorted: Vec<&Splice> = edits.iter().collect();
        sorted.sort_by_key(|e| e.at);
        let mut out = Vec::new();
        let mut cursor = 0;
        for (i, &op) in base.iter().enumerate() {
            let mut replaced = false;
            while cursor < sorted.len() && sorted[cursor].at == i {
                replaced |= sorted[cursor].replace;
                out.extend(sorted[cursor].ops.iter().copied());
                cursor += 1;
            }
            if !replaced {
                out.push(op);
            }
        }
        for edit in &sorted[cursor..] {
            if !edit.replace {
                out.extend(edit.ops.iter().copied());
            }
        }
        out
    }

    fn splice_cases(len: usize) -> Vec<Vec<Splice>> {
        vec![
            // No edits: pass-through.
            vec![],
            // One insert at the front, one replace in the middle.
            vec![
                Splice::insert(0, vec![Op::FpAlu, Op::IntMul]),
                Splice::replace(len / 2, vec![Op::PacCrypto]),
            ],
            // Insert and replace stacked on the same site (insert ops
            // come first, the original op is consumed by the replace).
            vec![
                Splice::insert(2, vec![Op::FpAlu]),
                Splice::replace(2, vec![Op::IntMul, Op::IntMul]),
            ],
            // Empty-ops replace = delete; plus a tail insert past the
            // end and a tail replace that must be dropped.
            vec![
                Splice::replace(1, vec![]),
                Splice::insert(len + 10, vec![Op::Xpacm]),
                Splice::replace(len + 11, vec![Op::FpAlu]),
            ],
            // Dense edits on consecutive sites.
            vec![
                Splice::insert(3, vec![Op::FpAlu]),
                Splice::insert(4, vec![Op::IntMul]),
                Splice::replace(5, vec![Op::PacCrypto]),
                Splice::insert(4, vec![Op::Xpacm]),
            ],
        ]
    }

    #[test]
    fn splice_many_matches_the_reference_rewrite() {
        let base = every_op_variant();
        for edits in splice_cases(base.len()) {
            let expected = splice_reference(&base, &edits);
            let streamed: Vec<Op> = base.iter().copied().splice_many(edits.clone()).collect();
            assert_eq!(streamed, expected, "edits {edits:?}");
        }
    }

    #[test]
    fn splice_many_batched_matches_per_op() {
        let base = every_op_variant();
        for edits in splice_cases(base.len()) {
            let expected = splice_reference(&base, &edits);
            for cap in [2, 3, 5, 64] {
                let batched: Vec<Op> = Batched::new(
                    SpliceMany::new(PerOp(base.iter().copied()), edits.clone()),
                    cap,
                )
                .collect();
                assert_eq!(batched, expected, "edits {edits:?} cap {cap}");
            }
        }
    }

    #[test]
    fn splice_many_agrees_with_the_single_op_adapters() {
        let base = every_op_variant();
        for at in [0, 3, base.len() - 1, base.len() + 2] {
            let via_insert: Vec<Op> = base.iter().copied().insert_at(at, Op::FpAlu).collect();
            let via_many: Vec<Op> = base
                .iter()
                .copied()
                .splice_many(vec![Splice::insert(at, vec![Op::FpAlu])])
                .collect();
            assert_eq!(via_many, via_insert, "insert at {at}");
            let via_replace: Vec<Op> = base.iter().copied().replace_at(at, Op::IntMul).collect();
            let via_many: Vec<Op> = base
                .iter()
                .copied()
                .splice_many(vec![Splice::replace(at, vec![Op::IntMul])])
                .collect();
            assert_eq!(via_many, via_replace, "replace at {at}");
        }
    }

    #[test]
    fn splice_many_buffering_is_bounded_by_edit_ops() {
        let edits = vec![
            Splice::insert(10, vec![Op::FpAlu; 3]),
            Splice::replace(500_000, vec![Op::IntMul]),
        ];
        let mut stream = SpliceMany::new(ints(1_000_000).metered(), edits);
        let n = (&mut stream).count();
        assert_eq!(n, 1_000_000 + 3, "3 inserted, 1 replaced in place");
        assert_eq!(
            stream.peak_buffered_ops(),
            4,
            "buffer bound is the total edit op count, independent of trace length"
        );
    }

    #[test]
    fn metered_batched_counts_and_preserves_order() {
        let base: Vec<Op> = every_op_variant();
        let mut stream = PerOp(base.iter().copied()).metered();
        let mut batch = OpBatch::with_capacity(4);
        let mut total = 0;
        loop {
            batch.clear();
            let n = stream.refill_batch(&mut batch);
            if n == 0 {
                break;
            }
            total += n;
        }
        assert_eq!(total, base.len());
        assert_eq!(stream.ops(), base.len() as u64);
    }

    #[test]
    fn batched_driver_records_refill_telemetry() {
        use aos_util::Telemetry;
        let t = Telemetry::enabled();
        let ops = every_op_variant();
        let n: usize = Batched::new(PerOp(ops.iter().copied()), 8)
            .with_telemetry(t.clone())
            .count();
        assert_eq!(n, ops.len());
        let snap = t.snapshot();
        assert_eq!(snap.counter(Counter::BatchOpsRefilled), ops.len() as u64);
        assert_eq!(
            snap.counter(Counter::BatchFallbackOps),
            ops.len() as u64,
            "PerOp is the fallback bridge"
        );
    }

    #[test]
    fn lookahead_batched_matches_per_op_windows() {
        let trace: Vec<Op> = (0..100)
            .map(|i| Op::Load {
                pointer: i,
                bytes: 8,
                chained: false,
            })
            .collect();
        let mut per_op = Lookahead::new(trace.iter().copied(), 5);
        let mut batched = Lookahead::batched(PerOp(trace.iter().copied()), 5, 16);
        loop {
            let a = per_op.next_op();
            let b = batched.next_op_batched();
            assert_eq!(a, b);
            let wa: Vec<Op> = per_op.window().copied().collect();
            let wb: Vec<Op> = batched.window().copied().collect();
            assert_eq!(wa, wb, "windows diverge at {:?}", a);
            if a.is_none() {
                break;
            }
        }
        assert_eq!(per_op.consumed(), batched.consumed());
    }
}
