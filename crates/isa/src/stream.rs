//! Streaming op-pipeline adapters: compose trace producers,
//! transformers and consumers without ever materializing a `Vec<Op>`.
//!
//! The paper's claim is *always-on* enforcement over 3-billion-
//! instruction SPEC windows; a pipeline that collects every trace into
//! memory caps the window it can afford at `O(trace)` RSS per worker.
//! Everything in this module is `O(window)`: an [`OpStream`] is any
//! `Iterator<Item = Op>`, and the adapters below buffer at most a
//! fixed number of ops regardless of trace length —
//!
//! - [`InsertAt`] / [`ReplaceAt`] — positional single-op splices
//!   (the streaming form of the fault injectors' trace rewrites);
//! - [`Lookahead`] — a bounded lookahead window over a stream, used
//!   by the use-after-free planner that must prove no same-PAC
//!   reallocation lands inside the ROB-sized retirement window;
//! - [`Metered`] — transparent op counting plus the
//!   [`BufferedOps`] high-water mark, which is how the campaign
//!   report's `peak_trace_bytes` column is measured rather than
//!   asserted.
//!
//! # Examples
//!
//! ```
//! use aos_isa::stream::{BufferedOps, OpStream};
//! use aos_isa::Op;
//!
//! // Splice one op into a stream at index 2, without collecting it.
//! let base = std::iter::repeat(Op::IntAlu).take(4);
//! let spliced: Vec<Op> = base.insert_at(2, Op::FpAlu).collect();
//! assert_eq!(spliced.len(), 5);
//! assert_eq!(spliced[2], Op::FpAlu);
//!
//! // Meter a stream while a consumer drains it.
//! let mut stream = std::iter::repeat(Op::IntAlu).take(1000).metered();
//! for _op in &mut stream {}
//! assert_eq!(stream.ops(), 1000);
//! assert_eq!(stream.peak_buffered_ops(), 0, "a plain iterator buffers nothing");
//! ```

use std::collections::VecDeque;

use crate::Op;

/// A stream component that buffers ops internally and can report its
/// high-water mark — the measurable `O(window)` memory proof for the
/// streaming pipeline. A component that holds no ops reports 0.
pub trait BufferedOps {
    /// The maximum number of ops this component (including anything it
    /// wraps) has held buffered at any point so far.
    fn peak_buffered_ops(&self) -> usize;
}

/// The streaming trace vocabulary: any iterator over [`Op`]s, plus the
/// adapter combinators of this module. Blanket-implemented, so every
/// producer — a `TraceGenerator`, a decoded trace file, a `Vec` being
/// drained — composes for free.
pub trait OpStream: Iterator<Item = Op> {
    /// Splices `op` into the stream so it is yielded at index `at`
    /// (everything from `at` onward shifts one position later). An
    /// `at` beyond the end of the stream appends the op.
    fn insert_at(self, at: usize, op: Op) -> InsertAt<Self>
    where
        Self: Sized,
    {
        InsertAt {
            inner: self,
            at,
            op: Some(op),
            index: 0,
        }
    }

    /// Replaces the op at index `at` with `op`, preserving stream
    /// length. A stream shorter than `at` is passed through unchanged.
    fn replace_at(self, at: usize, op: Op) -> ReplaceAt<Self>
    where
        Self: Sized,
    {
        ReplaceAt {
            inner: self,
            at,
            op: Some(op),
            index: 0,
        }
    }

    /// Counts the ops that flow through, transparently.
    fn metered(self) -> Metered<Self>
    where
        Self: Sized,
    {
        Metered {
            inner: self,
            emitted: 0,
        }
    }
}

impl<I: Iterator<Item = Op>> OpStream for I {}

/// Yields the wrapped stream with one extra op spliced in at a fixed
/// index. See [`OpStream::insert_at`]. Buffers exactly one op.
#[derive(Debug, Clone)]
pub struct InsertAt<I> {
    inner: I,
    at: usize,
    op: Option<Op>,
    index: usize,
}

impl<I> InsertAt<I> {
    /// The wrapped stream.
    pub fn get_ref(&self) -> &I {
        &self.inner
    }
}

impl<I: Iterator<Item = Op>> Iterator for InsertAt<I> {
    type Item = Op;

    fn next(&mut self) -> Option<Op> {
        if self.index == self.at {
            if let Some(op) = self.op.take() {
                self.index += 1;
                return Some(op);
            }
        }
        match self.inner.next() {
            Some(op) => {
                self.index += 1;
                Some(op)
            }
            // The splice point lies at (or past) the end: append.
            None => self.op.take().inspect(|_| self.index += 1),
        }
    }
}

impl<I: BufferedOps> BufferedOps for InsertAt<I> {
    fn peak_buffered_ops(&self) -> usize {
        // The pending splice op is this adapter's entire buffer.
        self.inner.peak_buffered_ops() + 1
    }
}

/// Yields the wrapped stream with the op at one fixed index swapped
/// out. See [`OpStream::replace_at`]. Buffers exactly one op.
#[derive(Debug, Clone)]
pub struct ReplaceAt<I> {
    inner: I,
    at: usize,
    op: Option<Op>,
    index: usize,
}

impl<I> ReplaceAt<I> {
    /// The wrapped stream.
    pub fn get_ref(&self) -> &I {
        &self.inner
    }
}

impl<I: Iterator<Item = Op>> Iterator for ReplaceAt<I> {
    type Item = Op;

    fn next(&mut self) -> Option<Op> {
        let op = self.inner.next()?;
        let index = self.index;
        self.index += 1;
        if index == self.at {
            if let Some(replacement) = self.op.take() {
                return Some(replacement);
            }
        }
        Some(op)
    }
}

impl<I: BufferedOps> BufferedOps for ReplaceAt<I> {
    fn peak_buffered_ops(&self) -> usize {
        self.inner.peak_buffered_ops() + 1
    }
}

/// Transparent op counter; composes with [`BufferedOps`] so a consumer
/// can drain a stream through `&mut` and read both the op count and
/// the pipeline's peak buffer afterwards.
#[derive(Debug, Clone)]
pub struct Metered<I> {
    inner: I,
    emitted: u64,
}

impl<I> Metered<I> {
    /// Ops yielded so far.
    pub fn ops(&self) -> u64 {
        self.emitted
    }

    /// The wrapped stream.
    pub fn get_ref(&self) -> &I {
        &self.inner
    }
}

impl<I: Iterator<Item = Op>> Iterator for Metered<I> {
    type Item = Op;

    fn next(&mut self) -> Option<Op> {
        let op = self.inner.next()?;
        self.emitted += 1;
        Some(op)
    }
}

impl<I: BufferedOps> BufferedOps for Metered<I> {
    fn peak_buffered_ops(&self) -> usize {
        self.inner.peak_buffered_ops()
    }
}

/// Iterators with no internal storage (slices being copied, ranges,
/// repeat/take chains) buffer nothing. This blanket-free impl covers
/// the common leaf producers used in tests and doc examples.
impl<'a, T: Iterator<Item = &'a Op>> BufferedOps for std::iter::Copied<T> {
    fn peak_buffered_ops(&self) -> usize {
        0
    }
}

impl<I> BufferedOps for std::iter::Take<I> {
    fn peak_buffered_ops(&self) -> usize {
        0
    }
}

impl<T> BufferedOps for std::iter::Repeat<T> {
    fn peak_buffered_ops(&self) -> usize {
        0
    }
}

/// A bounded lookahead window over an op stream.
///
/// [`Lookahead::next_op`] yields `(index, op)` pairs in order; after a
/// yield, [`Lookahead::window`] exposes up to `window` *following*
/// ops — exactly `trace[i + 1 ..= i + window]`, truncated at the end
/// of the stream. The buffer never holds more than `window + 1` ops,
/// so scanning a trace for anchors is `O(window)` memory no matter how
/// long the trace runs.
#[derive(Debug)]
pub struct Lookahead<I: Iterator<Item = Op>> {
    inner: I,
    buf: VecDeque<Op>,
    window: usize,
    index: usize,
    peak: usize,
    exhausted: bool,
}

impl<I: Iterator<Item = Op>> Lookahead<I> {
    /// Wraps `inner` with a lookahead of `window` ops.
    pub fn new(inner: I, window: usize) -> Self {
        Self {
            inner,
            buf: VecDeque::with_capacity(window + 1),
            window,
            index: 0,
            peak: 0,
            exhausted: false,
        }
    }

    fn fill(&mut self) {
        while !self.exhausted && self.buf.len() < self.window + 1 {
            match self.inner.next() {
                Some(op) => self.buf.push_back(op),
                None => self.exhausted = true,
            }
        }
        self.peak = self.peak.max(self.buf.len());
    }

    /// The next op and its stream index, or `None` at end of stream.
    pub fn next_op(&mut self) -> Option<(usize, Op)> {
        self.fill();
        let op = self.buf.pop_front()?;
        let index = self.index;
        self.index += 1;
        Some((index, op))
    }

    /// The buffered lookahead: the ops that *follow* the one most
    /// recently yielded by [`Lookahead::next_op`], in stream order.
    pub fn window(&self) -> impl Iterator<Item = &Op> {
        self.buf.iter()
    }

    /// Ops consumed from the underlying stream so far (the total
    /// stream length once `next_op` has returned `None`).
    pub fn consumed(&self) -> usize {
        self.index
    }
}

impl<I: Iterator<Item = Op>> BufferedOps for Lookahead<I> {
    fn peak_buffered_ops(&self) -> usize {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(n: usize) -> std::iter::Take<std::iter::Repeat<Op>> {
        std::iter::repeat(Op::IntAlu).take(n)
    }

    #[test]
    fn insert_at_matches_vec_splice() {
        for at in [0usize, 1, 3, 7, 8] {
            let streamed: Vec<Op> = ints(8).insert_at(at, Op::FpAlu).collect();
            let mut expected: Vec<Op> = ints(8).collect();
            expected.insert(at.min(8), Op::FpAlu);
            assert_eq!(streamed, expected, "at {at}");
        }
    }

    #[test]
    fn insert_past_the_end_appends() {
        let streamed: Vec<Op> = ints(3).insert_at(100, Op::FpAlu).collect();
        assert_eq!(streamed.len(), 4);
        assert_eq!(streamed[3], Op::FpAlu);
    }

    #[test]
    fn replace_at_swaps_exactly_one_op() {
        let streamed: Vec<Op> = ints(5).replace_at(2, Op::IntMul).collect();
        assert_eq!(streamed.len(), 5);
        assert_eq!(streamed[2], Op::IntMul);
        assert!(streamed.iter().filter(|o| **o == Op::IntMul).count() == 1);
        // Replacement index past the end: pass-through.
        let unchanged: Vec<Op> = ints(3).replace_at(9, Op::IntMul).collect();
        assert_eq!(unchanged, ints(3).collect::<Vec<_>>());
    }

    #[test]
    fn metered_counts_without_reordering() {
        let mut stream = ints(257).metered();
        let drained: Vec<Op> = (&mut stream).collect();
        assert_eq!(drained.len(), 257);
        assert_eq!(stream.ops(), 257);
    }

    #[test]
    fn lookahead_window_is_the_following_ops() {
        let trace: Vec<Op> = (0..10)
            .map(|i| Op::Load {
                pointer: i,
                bytes: 8,
                chained: false,
            })
            .collect();
        let mut look = Lookahead::new(trace.iter().copied(), 3);
        let (i, op) = look.next_op().unwrap();
        assert_eq!(i, 0);
        assert_eq!(op, trace[0]);
        let window: Vec<Op> = look.window().copied().collect();
        assert_eq!(window, trace[1..4], "window is trace[i+1 ..= i+3]");
        // Drain; the window truncates near the end instead of stalling.
        let mut last = 0;
        while let Some((i, _)) = look.next_op() {
            last = i;
            assert!(look.window().count() <= 3);
        }
        assert_eq!(last, 9);
        assert_eq!(look.consumed(), 10);
    }

    #[test]
    fn lookahead_buffer_is_bounded_by_window() {
        let mut look = Lookahead::new(ints(100_000), 256);
        while look.next_op().is_some() {}
        assert_eq!(look.consumed(), 100_000);
        assert!(
            look.peak_buffered_ops() <= 257,
            "peak {} exceeds the 256-op window",
            look.peak_buffered_ops()
        );
    }

    #[test]
    fn adapters_report_their_buffering() {
        let inserted = ints(4).insert_at(1, Op::FpAlu);
        assert_eq!(inserted.peak_buffered_ops(), 1);
        let metered = ints(4).metered();
        assert_eq!(metered.peak_buffered_ops(), 0);
    }
}
