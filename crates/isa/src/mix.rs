//! Instruction-mix accounting for Fig. 16.
//!
//! The paper reports, per workload, how many of each instruction class
//! appear per billion instructions: unsigned/signed loads and stores,
//! `bndstr`/`bndclr`, and the `pac*`/`aut*`/`xpac*` family.

use crate::Op;
use aos_ptrauth::PointerLayout;

/// Counters for the Fig. 16 categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InstMix {
    /// Total ops recorded.
    pub total: u64,
    /// Loads through unsigned pointers.
    pub unsigned_loads: u64,
    /// Stores through unsigned pointers.
    pub unsigned_stores: u64,
    /// Loads through signed pointers (require bounds checking).
    pub signed_loads: u64,
    /// Stores through signed pointers.
    pub signed_stores: u64,
    /// `bndstr` + `bndclr`.
    pub bnd_ops: u64,
    /// `pacma`/`pac*`/`aut*`/`xpac*` family.
    pub pac_ops: u64,
}

impl InstMix {
    /// Records one op.
    pub fn record(&mut self, op: &Op, layout: PointerLayout) {
        self.total += 1;
        match *op {
            Op::Load { pointer, .. } => {
                if layout.is_signed(pointer) {
                    self.signed_loads += 1;
                } else {
                    self.unsigned_loads += 1;
                }
            }
            Op::Store { pointer, .. } => {
                if layout.is_signed(pointer) {
                    self.signed_stores += 1;
                } else {
                    self.unsigned_stores += 1;
                }
            }
            Op::BndStr { .. } | Op::BndClr { .. } => self.bnd_ops += 1,
            Op::Pacma { .. } | Op::Xpacm | Op::Autm { .. } | Op::PacCrypto => self.pac_ops += 1,
            _ => {}
        }
    }

    /// Fraction of all memory accesses that are signed — the quantity
    /// the paper highlights (e.g. hmmer > 99%).
    pub fn signed_access_fraction(&self) -> f64 {
        let signed = self.signed_loads + self.signed_stores;
        let total = signed + self.unsigned_loads + self.unsigned_stores;
        if total == 0 {
            0.0
        } else {
            signed as f64 / total as f64
        }
    }

    /// Scales a counter to "per billion instructions", the figure's
    /// unit.
    pub fn per_billion(&self, count: u64) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            count as f64 * 1e9 / self.total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_by_signedness() {
        let layout = PointerLayout::default();
        let mut mix = InstMix::default();
        let signed = layout.compose(0x4000, 0xAB, 1);
        mix.record(&Op::Load { pointer: signed, bytes: 8, chained: false }, layout);
        mix.record(&Op::Load { pointer: 0x5000, bytes: 8, chained: false }, layout);
        mix.record(&Op::Store { pointer: signed, bytes: 8 }, layout);
        mix.record(&Op::Store { pointer: 0x5000, bytes: 8 }, layout);
        mix.record(&Op::IntAlu, layout);
        assert_eq!(mix.signed_loads, 1);
        assert_eq!(mix.unsigned_loads, 1);
        assert_eq!(mix.signed_stores, 1);
        assert_eq!(mix.unsigned_stores, 1);
        assert_eq!(mix.total, 5);
        assert!((mix.signed_access_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn counts_instrumentation_families() {
        let layout = PointerLayout::default();
        let mut mix = InstMix::default();
        mix.record(&Op::BndStr { pointer: 0, size: 16 }, layout);
        mix.record(&Op::BndClr { pointer: 0 }, layout);
        mix.record(&Op::Pacma { pointer: 0, size: 16 }, layout);
        mix.record(&Op::Xpacm, layout);
        mix.record(&Op::Autm { pointer: 0 }, layout);
        mix.record(&Op::PacCrypto, layout);
        assert_eq!(mix.bnd_ops, 2);
        assert_eq!(mix.pac_ops, 4);
    }

    #[test]
    fn per_billion_scaling() {
        let layout = PointerLayout::default();
        let mut mix = InstMix::default();
        for _ in 0..1000 {
            mix.record(&Op::IntAlu, layout);
        }
        assert_eq!(mix.per_billion(1), 1e6);
        assert_eq!(InstMix::default().per_billion(5), 0.0);
    }

    #[test]
    fn empty_mix_fraction_is_zero() {
        assert_eq!(InstMix::default().signed_access_fraction(), 0.0);
    }
}
