//! The micro-op vocabulary of the simulated machine.

use aos_ptrauth::PointerLayout;

/// A memory reference extracted from an [`Op`] for the cache model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemoryRef {
    /// Virtual byte address (metadata stripped).
    pub addr: u64,
    /// Access width in bytes.
    pub bytes: u32,
    /// `true` for stores.
    pub is_store: bool,
    /// `true` for safety-metadata accesses served by a dedicated
    /// metadata cache (Watchdog's lock-location cache; AOS's L1-B is
    /// the analogous structure, §V-F1).
    pub metadata: bool,
}

/// One dynamic micro-operation.
///
/// Pointers inside ops are *raw 64-bit register values* — under AOS
/// configurations they carry PAC and AHC in their upper bits, exactly
/// as the hardware would see them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Single-cycle integer ALU operation.
    IntAlu,
    /// Multi-cycle integer operation (multiply/divide class).
    IntMul,
    /// Floating-point operation.
    FpAlu,
    /// Conditional or indirect branch.
    Branch {
        /// Static branch site (program counter).
        pc: u64,
        /// Resolved direction.
        taken: bool,
        /// Whether the (trace-replayed) predictor missed it; ignored
        /// when the machine runs its own L-TAGE.
        mispredicted: bool,
    },
    /// Data load through a (possibly signed) pointer.
    Load {
        /// Register value used as the address.
        pointer: u64,
        /// Access width in bytes.
        bytes: u32,
        /// Address-dependent on the previous load (pointer chasing):
        /// cannot start until that load delivers its value.
        chained: bool,
    },
    /// Data store through a (possibly signed) pointer.
    Store {
        /// Register value used as the address.
        pointer: u64,
        /// Access width in bytes.
        bytes: u32,
    },
    /// `pacma`/`pacmb`: sign a data pointer with PAC + AHC (4-cycle
    /// QARMA, Table IV).
    Pacma {
        /// Pointer being signed.
        pointer: u64,
        /// Size operand (`xzr` → 0).
        size: u64,
    },
    /// `xpacm`: strip PAC and AHC (1 cycle).
    Xpacm,
    /// `autm`: AHC-nonzero authentication (1 cycle — no QARMA).
    Autm {
        /// Pointer being authenticated.
        pointer: u64,
    },
    /// Generic Arm PA sign/authenticate (`pacia`, `autda`, …):
    /// 4-cycle QARMA.
    PacCrypto,
    /// `bndstr`: store bounds into the HBT (handled by the MCU).
    BndStr {
        /// Signed pointer (lower bound source).
        pointer: u64,
        /// Chunk size.
        size: u64,
    },
    /// `bndclr`: clear bounds in the HBT (handled by the MCU).
    BndClr {
        /// Signed pointer being freed.
        pointer: u64,
    },
    /// Watchdog check µop: compares register bounds and loads the
    /// 8-byte lock location for UAF detection.
    WdCheck {
        /// Pointer being checked.
        pointer: u64,
    },
    /// Watchdog metadata shadow access: propagates 24-byte pointer
    /// metadata through memory alongside a pointer load/store.
    WdMeta {
        /// The pointer whose shadow record is accessed.
        pointer: u64,
        /// Whether the shadow record is written.
        is_store: bool,
    },
}

impl Op {
    /// Execution latency in cycles for non-memory ops; memory ops
    /// return their address-generation latency (the cache adds the
    /// rest).
    pub fn exec_latency(&self) -> u64 {
        match self {
            Op::IntAlu | Op::Xpacm | Op::Autm { .. } | Op::Branch { .. } => 1,
            Op::IntMul | Op::FpAlu => 3,
            Op::Pacma { .. } | Op::PacCrypto => 4,
            Op::Load { .. } | Op::Store { .. } | Op::WdCheck { .. } | Op::WdMeta { .. } => 1,
            Op::BndStr { .. } | Op::BndClr { .. } => 1,
        }
    }

    /// The data-memory reference this op performs, if any. Bounds-table
    /// traffic is *not* included here — the MCU generates it.
    pub fn memory_ref(&self, layout: PointerLayout) -> Option<MemoryRef> {
        match *self {
            Op::Load { pointer, bytes, .. } => Some(MemoryRef {
                addr: layout.address(pointer),
                bytes,
                is_store: false,
                metadata: false,
            }),
            Op::Store { pointer, bytes } => Some(MemoryRef {
                addr: layout.address(pointer),
                bytes,
                is_store: true,
                metadata: false,
            }),
            Op::WdCheck { pointer } => Some(MemoryRef {
                addr: crate::watchdog::lock_address(layout.address(pointer)),
                bytes: 8,
                is_store: false,
                metadata: true,
            }),
            Op::WdMeta { pointer, is_store } => Some(MemoryRef {
                addr: crate::watchdog::shadow_address(layout.address(pointer)),
                bytes: 24,
                is_store,
                metadata: false,
            }),
            _ => None,
        }
    }

    /// Whether the op allocates a load/store-queue entry. Watchdog's
    /// check µop reads its lock through a dedicated lock-location
    /// cache beside the core (Watchdog §5; the paper models the AOS
    /// L1-B after it), so it does not consume an LSQ slot; the shadow
    /// metadata movement (`WdMeta`) is ordinary memory traffic.
    pub fn occupies_lsq(&self) -> bool {
        matches!(self, Op::Load { .. } | Op::Store { .. } | Op::WdMeta { .. })
    }

    /// Whether the op must also be enqueued into the MCU (AOS
    /// configurations only).
    pub fn needs_mcu(&self) -> bool {
        matches!(
            self,
            Op::Load { .. } | Op::Store { .. } | Op::BndStr { .. } | Op::BndClr { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_match_table_iv() {
        assert_eq!(Op::Pacma { pointer: 0, size: 0 }.exec_latency(), 4);
        assert_eq!(Op::PacCrypto.exec_latency(), 4);
        assert_eq!(Op::Xpacm.exec_latency(), 1);
        assert_eq!(Op::Autm { pointer: 0 }.exec_latency(), 1);
        assert_eq!(Op::IntAlu.exec_latency(), 1);
    }

    #[test]
    fn memory_refs_strip_metadata() {
        let layout = PointerLayout::default();
        let signed = layout.compose(0x4000, 0xAB, 1);
        let r = Op::Load {
            pointer: signed,
            bytes: 8,
            chained: false,
        }
        .memory_ref(layout)
        .unwrap();
        assert_eq!(r.addr, 0x4000);
        assert!(!r.is_store);
        let w = Op::Store {
            pointer: signed,
            bytes: 4,
        }
        .memory_ref(layout)
        .unwrap();
        assert!(w.is_store);
        assert_eq!(w.bytes, 4);
    }

    #[test]
    fn non_memory_ops_have_no_ref() {
        let layout = PointerLayout::default();
        assert!(Op::IntAlu.memory_ref(layout).is_none());
        assert!(Op::PacCrypto.memory_ref(layout).is_none());
        assert!(Op::BndStr { pointer: 0, size: 1 }.memory_ref(layout).is_none());
    }

    #[test]
    fn watchdog_ops_reference_metadata_space() {
        let layout = PointerLayout::default();
        let chk = Op::WdCheck { pointer: 0x4000 }.memory_ref(layout).unwrap();
        let meta = Op::WdMeta {
            pointer: 0x4000,
            is_store: true,
        }
        .memory_ref(layout)
        .unwrap();
        assert_ne!(chk.addr, 0x4000);
        assert_ne!(meta.addr, 0x4000);
        assert_ne!(chk.addr, meta.addr);
        assert_eq!(meta.bytes, 24, "Watchdog metadata is 24 bytes");
        assert!(meta.is_store);
    }

    #[test]
    fn mcu_routing() {
        assert!(Op::Load { pointer: 0, bytes: 8, chained: false }.needs_mcu());
        assert!(Op::Store { pointer: 0, bytes: 8 }.needs_mcu());
        assert!(Op::BndStr { pointer: 0, size: 16 }.needs_mcu());
        assert!(Op::BndClr { pointer: 0 }.needs_mcu());
        assert!(!Op::IntAlu.needs_mcu());
        assert!(!Op::WdCheck { pointer: 0 }.needs_mcu());
    }
}
