use aos_isa::stream::{OpStream, Splice};
use aos_isa::Op;

#[test]
fn replace_at_exactly_len_is_dropped() {
    let base = vec![Op::IntAlu, Op::FpAlu, Op::IntMul];
    // replace at index == len (one past last op) — docs say dropped
    let out: Vec<Op> = base.iter().copied()
        .splice_many(vec![Splice::replace(3, vec![Op::PacCrypto])])
        .collect();
    assert_eq!(out, base, "replace past end must be dropped, got {out:?}");
}
