//! Seeded trace transformers: each injector splices exactly one
//! memory-safety fault into an instrumented op stream.
//!
//! Faults anchor on the instrumentation ops the AOS compiler pass
//! emits (`bndstr` marks an allocation's bounds going live, `bndclr`
//! marks a free), so the injected access provably targets a real heap
//! object lifecycle rather than an arbitrary address. The anchor is
//! chosen with a seeded generator, making every injection a pure
//! function of `(trace, kind, seed)`.

use aos_isa::Op;
use aos_ptrauth::PointerLayout;
use aos_util::rng::Xoshiro256StarStar;
use aos_util::AosError;

/// The memory-safety fault classes the harness can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Store one byte past an allocation's upper bound (spatial).
    OverflowWrite,
    /// Store below an allocation's lower bound (spatial).
    UnderflowWrite,
    /// Load through a pointer whose bounds were just cleared
    /// (temporal).
    UseAfterFree,
    /// Clear the same bounds twice (temporal).
    DoubleFree,
    /// Flip a bit in a signed pointer's PAC field — a forged or
    /// corrupted pointer authentication code.
    PacTamper,
    /// Stamp a nonzero AHC and arbitrary PAC onto an unsigned
    /// (stack/global) access — forging AOS metadata from whole cloth.
    AhcForge,
}

impl FaultKind {
    /// Every fault class, in report order.
    pub const ALL: [FaultKind; 6] = [
        FaultKind::OverflowWrite,
        FaultKind::UnderflowWrite,
        FaultKind::UseAfterFree,
        FaultKind::DoubleFree,
        FaultKind::PacTamper,
        FaultKind::AhcForge,
    ];

    /// The stable report/CLI name of the fault class.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::OverflowWrite => "overflow",
            FaultKind::UnderflowWrite => "underflow",
            FaultKind::UseAfterFree => "uaf",
            FaultKind::DoubleFree => "double-free",
            FaultKind::PacTamper => "pac-tamper",
            FaultKind::AhcForge => "ahc-forge",
        }
    }

    /// Parses a CLI/report name back into a kind.
    pub fn parse(name: &str) -> Result<Self, AosError> {
        FaultKind::ALL
            .into_iter()
            .find(|k| k.name() == name)
            .ok_or_else(|| {
                AosError::invalid_input(
                    "fault kind",
                    format!(
                        "unknown kind '{name}' (expected one of: {})",
                        FaultKind::ALL.map(|k| k.name()).join(", ")
                    ),
                )
            })
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One fully specified fault: what to inject and the seed that picks
/// where.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultSpec {
    /// The fault class.
    pub kind: FaultKind,
    /// Seed selecting the anchor site (and tampered bits).
    pub seed: u64,
}

/// A faulted trace plus where and what was spliced in.
#[derive(Debug, Clone)]
pub struct Injection {
    /// The transformed op stream.
    pub ops: Vec<Op>,
    /// Index in `ops` of the first injected/modified op.
    pub site: usize,
    /// Human-readable description of the fault, for reports.
    pub description: String,
}

/// Splices the fault described by `spec` into `trace`.
///
/// Errors with [`AosError::InvalidInput`] when the trace has no
/// anchor for the requested kind (e.g. an uninstrumented trace with
/// no `bndstr`), rather than panicking — a campaign must survive a
/// mis-specified cell.
pub fn inject(trace: &[Op], layout: PointerLayout, spec: FaultSpec) -> Result<Injection, AosError> {
    let mut rng = Xoshiro256StarStar::seed_from_u64(spec.seed ^ fault_salt(spec.kind));
    match spec.kind {
        FaultKind::OverflowWrite => {
            let (i, pointer, size) = pick_bndstr(trace, &mut rng, spec.kind)?;
            splice_after(
                trace,
                i,
                Op::Store {
                    pointer: pointer.wrapping_add(size),
                    bytes: 8,
                },
                format!("overflow store at base+{size} of the bndstr at op {i}"),
            )
        }
        FaultKind::UnderflowWrite => {
            let (i, pointer, _) = pick_bndstr(trace, &mut rng, spec.kind)?;
            splice_after(
                trace,
                i,
                Op::Store {
                    pointer: pointer.wrapping_sub(8),
                    bytes: 8,
                },
                format!("underflow store at base-8 of the bndstr at op {i}"),
            )
        }
        FaultKind::UseAfterFree => {
            // The dangling access must be far enough downstream that
            // the free has architecturally committed (the machine's
            // ROB is smaller than this window, so in-order retirement
            // forces the bndclr's table clear before the load can
            // issue), and the window must not contain a bndstr that
            // re-signs the same PAC — that would be a legitimate
            // reallocation, not a UAF.
            let candidates: Vec<(usize, u64)> = trace
                .iter()
                .enumerate()
                .filter_map(|(i, op)| match *op {
                    Op::BndClr { pointer } => Some((i, pointer)),
                    _ => None,
                })
                .filter(|&(i, pointer)| {
                    let pac = layout.pac(pointer);
                    let end = (i + 1 + UAF_DELAY_OPS).min(trace.len());
                    !trace[i + 1..end].iter().any(|o| {
                        matches!(o, Op::BndStr { pointer: q, .. } if layout.pac(*q) == pac)
                    })
                })
                .collect();
            if candidates.is_empty() {
                return Err(AosError::invalid_input(
                    "fault injection",
                    "trace has no bndclr (free) without a same-PAC reallocation \
                     inside the retirement window to anchor a uaf fault on",
                ));
            }
            let (i, pointer) = candidates[rng.next_index(candidates.len())];
            let at = (i + 1 + UAF_DELAY_OPS).min(trace.len());
            splice_at(
                trace,
                at,
                Op::Load {
                    pointer,
                    bytes: 8,
                    chained: false,
                },
                format!("load through the pointer freed by the bndclr at op {i}"),
            )
        }
        FaultKind::DoubleFree => {
            let (i, pointer) = pick_bndclr(trace, &mut rng, spec.kind)?;
            splice_after(
                trace,
                i,
                Op::BndClr { pointer },
                format!("second bndclr of the pointer freed at op {i}"),
            )
        }
        FaultKind::PacTamper => {
            let candidates: Vec<usize> = trace
                .iter()
                .enumerate()
                .filter(|(_, op)| signed_access_pointer(op, layout).is_some())
                .map(|(i, _)| i)
                .collect();
            let i = pick(&candidates, &mut rng, spec.kind, "signed heap access")?;
            let bit = layout.pac_shift() + (rng.next_u64() % u64::from(layout.pac_size())) as u32;
            let mut ops = trace.to_vec();
            ops[i] = retarget(&ops[i], |p| p ^ (1u64 << bit));
            Ok(Injection {
                ops,
                site: i,
                description: format!("flipped PAC bit {bit} of the access at op {i}"),
            })
        }
        FaultKind::AhcForge => {
            let candidates: Vec<usize> = trace
                .iter()
                .enumerate()
                .filter(|(_, op)| unsigned_access_pointer(op, layout).is_some())
                .map(|(i, _)| i)
                .collect();
            let i = pick(&candidates, &mut rng, spec.kind, "unsigned access")?;
            let forged_ahc = 1 + (rng.next_u64() % 3) as u8;
            let forged_pac = rng.next_u64() % layout.pac_space();
            let mut ops = trace.to_vec();
            ops[i] = retarget(&ops[i], |p| {
                layout.compose(layout.address(p), forged_pac, forged_ahc)
            });
            Ok(Injection {
                ops,
                site: i,
                description: format!(
                    "forged AHC={forged_ahc} PAC={forged_pac:#x} onto the access at op {i}"
                ),
            })
        }
    }
}

/// Ops between a `bndclr` and its injected dangling access — larger
/// than any Table IV ROB, so the free retires (and clears the table)
/// before the access can issue.
const UAF_DELAY_OPS: usize = 256;

/// Per-kind RNG stream salt, so the same seed picks independent sites
/// for different kinds.
fn fault_salt(kind: FaultKind) -> u64 {
    match kind {
        FaultKind::OverflowWrite => 0x4F56_464C,
        FaultKind::UnderflowWrite => 0x554E_4446,
        FaultKind::UseAfterFree => 0x5541_4652,
        FaultKind::DoubleFree => 0x4446_5245,
        FaultKind::PacTamper => 0x5041_4354,
        FaultKind::AhcForge => 0x4148_4346,
    }
}

fn pick(
    candidates: &[usize],
    rng: &mut Xoshiro256StarStar,
    kind: FaultKind,
    wanted: &str,
) -> Result<usize, AosError> {
    if candidates.is_empty() {
        return Err(AosError::invalid_input(
            "fault injection",
            format!("trace has no {wanted} to anchor a {kind} fault on"),
        ));
    }
    Ok(candidates[rng.next_index(candidates.len())])
}

fn pick_bndstr(
    trace: &[Op],
    rng: &mut Xoshiro256StarStar,
    kind: FaultKind,
) -> Result<(usize, u64, u64), AosError> {
    let candidates: Vec<usize> = trace
        .iter()
        .enumerate()
        .filter(|(_, op)| matches!(op, Op::BndStr { .. }))
        .map(|(i, _)| i)
        .collect();
    let i = pick(&candidates, rng, kind, "bndstr (allocation)")?;
    match trace[i] {
        Op::BndStr { pointer, size } => Ok((i, pointer, size)),
        _ => unreachable!("candidate index must point at a bndstr"),
    }
}

fn pick_bndclr(
    trace: &[Op],
    rng: &mut Xoshiro256StarStar,
    kind: FaultKind,
) -> Result<(usize, u64), AosError> {
    let candidates: Vec<usize> = trace
        .iter()
        .enumerate()
        .filter(|(_, op)| matches!(op, Op::BndClr { .. }))
        .map(|(i, _)| i)
        .collect();
    let i = pick(&candidates, rng, kind, "bndclr (free)")?;
    match trace[i] {
        Op::BndClr { pointer } => Ok((i, pointer)),
        _ => unreachable!("candidate index must point at a bndclr"),
    }
}

fn splice_after(
    trace: &[Op],
    anchor: usize,
    op: Op,
    description: String,
) -> Result<Injection, AosError> {
    splice_at(trace, anchor + 1, op, description)
}

fn splice_at(
    trace: &[Op],
    at: usize,
    op: Op,
    description: String,
) -> Result<Injection, AosError> {
    let mut ops = Vec::with_capacity(trace.len() + 1);
    ops.extend_from_slice(&trace[..at]);
    ops.push(op);
    ops.extend_from_slice(&trace[at..]);
    Ok(Injection { ops, site: at, description })
}

fn signed_access_pointer(op: &Op, layout: PointerLayout) -> Option<u64> {
    match *op {
        Op::Load { pointer, .. } | Op::Store { pointer, .. } if layout.is_signed(pointer) => {
            Some(pointer)
        }
        _ => None,
    }
}

fn unsigned_access_pointer(op: &Op, layout: PointerLayout) -> Option<u64> {
    match *op {
        Op::Load { pointer, .. } | Op::Store { pointer, .. } if !layout.is_signed(pointer) => {
            Some(pointer)
        }
        _ => None,
    }
}

/// Rewrites the pointer of a Load/Store in place, preserving every
/// other field.
fn retarget(op: &Op, f: impl Fn(u64) -> u64) -> Op {
    match *op {
        Op::Load {
            pointer,
            bytes,
            chained,
        } => Op::Load {
            pointer: f(pointer),
            bytes,
            chained,
        },
        Op::Store { pointer, bytes } => Op::Store {
            pointer: f(pointer),
            bytes,
        },
        _ => unreachable!("retarget only applies to data accesses"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aos_isa::SafetyConfig;
    use aos_workloads::{profile::by_name, TraceGenerator};

    fn aos_trace() -> Vec<Op> {
        let p = by_name("hmmer").unwrap();
        TraceGenerator::new(p, SafetyConfig::Aos, 0.004).collect()
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        let trace = aos_trace();
        let layout = PointerLayout::default();
        for kind in FaultKind::ALL {
            let spec = FaultSpec { kind, seed: 7 };
            let a = inject(&trace, layout, spec).unwrap();
            let b = inject(&trace, layout, spec).unwrap();
            assert_eq!(a.site, b.site, "{kind}");
            assert_eq!(a.ops, b.ops, "{kind}");
            let c = inject(&trace, layout, FaultSpec { kind, seed: 8 }).unwrap();
            // Different seeds are allowed to coincide for tiny traces,
            // but the description must still be self-consistent.
            assert!(c.site < c.ops.len());
        }
    }

    #[test]
    fn spliced_faults_grow_the_trace_by_one_op() {
        let trace = aos_trace();
        let layout = PointerLayout::default();
        for kind in [
            FaultKind::OverflowWrite,
            FaultKind::UnderflowWrite,
            FaultKind::UseAfterFree,
            FaultKind::DoubleFree,
        ] {
            let inj = inject(&trace, layout, FaultSpec { kind, seed: 1 }).unwrap();
            assert_eq!(inj.ops.len(), trace.len() + 1, "{kind}");
        }
        for kind in [FaultKind::PacTamper, FaultKind::AhcForge] {
            let inj = inject(&trace, layout, FaultSpec { kind, seed: 1 }).unwrap();
            assert_eq!(inj.ops.len(), trace.len(), "{kind} rewrites in place");
            assert_ne!(inj.ops[inj.site], trace[inj.site], "{kind}");
        }
    }

    #[test]
    fn uninstrumented_trace_yields_typed_error_not_panic() {
        let p = by_name("hmmer").unwrap();
        let baseline: Vec<Op> = TraceGenerator::new(p, SafetyConfig::Baseline, 0.004).collect();
        let err = inject(
            &baseline,
            PointerLayout::default(),
            FaultSpec {
                kind: FaultKind::OverflowWrite,
                seed: 0,
            },
        )
        .unwrap_err();
        assert!(matches!(err, AosError::InvalidInput { .. }));
    }

    #[test]
    fn kind_names_roundtrip() {
        for kind in FaultKind::ALL {
            assert_eq!(FaultKind::parse(kind.name()).unwrap(), kind);
        }
        assert!(FaultKind::parse("rowhammer").is_err());
    }
}
