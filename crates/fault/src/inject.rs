//! Seeded streaming fault planners: each injector splices exactly one
//! memory-safety fault into an instrumented op stream.
//!
//! Faults anchor on the instrumentation ops the AOS compiler pass
//! emits (`bndstr` marks an allocation's bounds going live, `bndclr`
//! marks a free), so the injected access provably targets a real heap
//! object lifecycle rather than an arbitrary address. The anchor is
//! chosen with a seeded generator, making every injection a pure
//! function of `(trace, kind, seed)`.
//!
//! Injection is two streaming passes, never a trace rewrite:
//! [`plan_fault`] scans one pass over the op stream in `O(window)`
//! memory (a k=1 reservoir picks the anchor uniformly; the
//! use-after-free planner additionally carries a
//! [`Lookahead`](aos_isa::stream::Lookahead) of [`UAF_DELAY_OPS`] ops
//! to rule out same-PAC reallocations), producing a [`FaultPlan`];
//! [`FaultPlan::apply`] then wraps a *fresh* stream of the same trace
//! with a one-op splice/replace adapter. The legacy slice-based
//! [`inject`] survives as a thin wrapper for callers that already hold
//! a materialized trace.

use aos_isa::stream::{
    BatchSource, BufferedOps, InsertAt, Lookahead, OpStream, PerOp, ReplaceAt, DEFAULT_BATCH_OPS,
};
use aos_isa::Op;
use aos_ptrauth::PointerLayout;
use aos_util::rng::Xoshiro256StarStar;
use aos_util::AosError;

/// The memory-safety fault classes the harness can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Store one byte past an allocation's upper bound (spatial).
    OverflowWrite,
    /// Store below an allocation's lower bound (spatial).
    UnderflowWrite,
    /// Load through a pointer whose bounds were just cleared
    /// (temporal).
    UseAfterFree,
    /// Clear the same bounds twice (temporal).
    DoubleFree,
    /// Flip a bit in a signed pointer's PAC field — a forged or
    /// corrupted pointer authentication code.
    PacTamper,
    /// Stamp a nonzero AHC and arbitrary PAC onto an unsigned
    /// (stack/global) access — forging AOS metadata from whole cloth.
    AhcForge,
}

impl FaultKind {
    /// Every fault class, in report order.
    pub const ALL: [FaultKind; 6] = [
        FaultKind::OverflowWrite,
        FaultKind::UnderflowWrite,
        FaultKind::UseAfterFree,
        FaultKind::DoubleFree,
        FaultKind::PacTamper,
        FaultKind::AhcForge,
    ];

    /// The stable report/CLI name of the fault class.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::OverflowWrite => "overflow",
            FaultKind::UnderflowWrite => "underflow",
            FaultKind::UseAfterFree => "uaf",
            FaultKind::DoubleFree => "double-free",
            FaultKind::PacTamper => "pac-tamper",
            FaultKind::AhcForge => "ahc-forge",
        }
    }

    /// Parses a CLI/report name back into a kind.
    pub fn parse(name: &str) -> Result<Self, AosError> {
        FaultKind::ALL
            .into_iter()
            .find(|k| k.name() == name)
            .ok_or_else(|| {
                AosError::invalid_input(
                    "fault kind",
                    format!(
                        "unknown kind '{name}' (expected one of: {})",
                        FaultKind::ALL.map(|k| k.name()).join(", ")
                    ),
                )
            })
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One fully specified fault: what to inject and the seed that picks
/// where.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultSpec {
    /// The fault class.
    pub kind: FaultKind,
    /// Seed selecting the anchor site (and tampered bits).
    pub seed: u64,
}

/// Ops between a `bndclr` and its injected dangling access — larger
/// than any Table IV ROB, so the free retires (and clears the table)
/// before the access can issue. Also the lookahead window (and hence
/// the peak buffered ops) of the streaming UAF planner.
pub const UAF_DELAY_OPS: usize = 256;

/// The single-op edit a plan performs at its site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Splice this op in so it is yielded at the site index.
    Insert(Op),
    /// Replace the op at the site index with this one.
    Replace(Op),
}

/// A planned fault: where to edit the stream and what to edit in.
///
/// Produced by one `O(window)`-memory scan of the trace stream
/// ([`plan_fault`]); applied to a fresh stream of the same trace with
/// [`FaultPlan::apply`]. A plan is a pure function of
/// `(trace, kind, seed)`, so planning once and replaying the faulted
/// stream many times (once per system under test) is sound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Stream index of the injected/modified op after applying.
    pub site: usize,
    /// The edit to perform at `site`.
    pub action: FaultAction,
    /// Human-readable description of the fault, for reports.
    pub description: String,
    /// Ops the planning scan consumed (the clean trace length).
    pub scanned_ops: usize,
    /// High-water mark of ops the planner held buffered — bounded by
    /// [`UAF_DELAY_OPS`] `+ 1`, independent of `scanned_ops`.
    pub peak_buffered_ops: usize,
}

impl FaultPlan {
    /// Wraps `stream` (a fresh replay of the planned trace) with the
    /// one-op edit adapter. The result is itself an op stream.
    pub fn apply<I: Iterator<Item = Op>>(&self, stream: I) -> FaultStream<I> {
        match self.action {
            FaultAction::Insert(op) => FaultStream::Insert(stream.insert_at(self.site, op)),
            FaultAction::Replace(op) => FaultStream::Replace(stream.replace_at(self.site, op)),
        }
    }
}

/// A clean op stream with a planned fault spliced in; see
/// [`FaultPlan::apply`]. Buffers exactly one op.
#[derive(Debug, Clone)]
pub enum FaultStream<I> {
    /// An insertion splice.
    Insert(InsertAt<I>),
    /// An in-place replacement.
    Replace(ReplaceAt<I>),
}

impl<I: Iterator<Item = Op>> Iterator for FaultStream<I> {
    type Item = Op;

    fn next(&mut self) -> Option<Op> {
        match self {
            FaultStream::Insert(s) => s.next(),
            FaultStream::Replace(s) => s.next(),
        }
    }
}

impl<I: BufferedOps> BufferedOps for FaultStream<I> {
    fn peak_buffered_ops(&self) -> usize {
        match self {
            FaultStream::Insert(s) => s.peak_buffered_ops(),
            FaultStream::Replace(s) => s.peak_buffered_ops(),
        }
    }
}

/// A faulted stream stays batch-native: both splice adapters refill
/// wholesale, so feeding a faulted trace through the batched pipeline
/// never degrades to per-op pulls.
impl<I: Iterator<Item = Op> + BatchSource> BatchSource for FaultStream<I> {
    fn refill_batch(&mut self, batch: &mut aos_isa::stream::OpBatch) -> usize {
        match self {
            FaultStream::Insert(s) => s.refill_batch(batch),
            FaultStream::Replace(s) => s.refill_batch(batch),
        }
    }

    fn batch_native(&self) -> bool {
        match self {
            FaultStream::Insert(s) => s.batch_native(),
            FaultStream::Replace(s) => s.batch_native(),
        }
    }
}

/// k=1 reservoir: offered the candidates in stream order, holds a
/// uniformly chosen one without ever knowing the population size.
struct Reservoir<T> {
    chosen: Option<T>,
    seen: usize,
}

impl<T> Reservoir<T> {
    fn new() -> Self {
        Self { chosen: None, seen: 0 }
    }

    fn offer(&mut self, rng: &mut Xoshiro256StarStar, item: T) {
        self.seen += 1;
        // P(keep the nth candidate) = 1/n — uniform over the stream.
        if rng.next_index(self.seen) == 0 {
            self.chosen = Some(item);
        }
    }

    fn into_chosen(self, kind: FaultKind, wanted: &str) -> Result<T, AosError> {
        self.chosen.ok_or_else(|| {
            AosError::invalid_input(
                "fault injection",
                format!("trace has no {wanted} to anchor a {kind} fault on"),
            )
        })
    }
}

/// Plans the fault described by `spec` from one streaming pass over
/// `trace` in `O(window)` memory.
///
/// Errors with [`AosError::InvalidInput`] when the trace has no
/// anchor for the requested kind (e.g. an uninstrumented trace with
/// no `bndstr`), rather than panicking — a campaign must survive a
/// mis-specified cell.
pub fn plan_fault(
    trace: impl Iterator<Item = Op>,
    layout: PointerLayout,
    spec: FaultSpec,
) -> Result<FaultPlan, AosError> {
    plan_fault_batched(PerOp(trace), layout, spec)
}

/// [`plan_fault`] over a batch-capable stream: the UAF planner's
/// lookahead window refills through the source's batch-native path
/// ([`Lookahead::batched`]) instead of pulling one op at a time, so a
/// planning pass over a [`TraceGenerator`]-backed stream shares the
/// hot refill loop with the simulation pipeline. Plans are identical
/// to [`plan_fault`]'s — the batched lookahead yields the same op
/// sequence and window contents bit for bit.
///
/// [`TraceGenerator`]: aos_workloads::TraceGenerator
pub fn plan_fault_batched(
    trace: impl Iterator<Item = Op> + BatchSource,
    layout: PointerLayout,
    spec: FaultSpec,
) -> Result<FaultPlan, AosError> {
    let mut rng = Xoshiro256StarStar::seed_from_u64(spec.seed ^ fault_salt(spec.kind));
    match spec.kind {
        FaultKind::OverflowWrite => {
            let (scanned, (i, pointer, size)) =
                pick_bndstr(trace, layout, &mut rng, spec.kind)?;
            Ok(FaultPlan {
                site: i + 1,
                action: FaultAction::Insert(Op::Store {
                    pointer: pointer.wrapping_add(size),
                    bytes: 8,
                }),
                description: format!("overflow store at base+{size} of the bndstr at op {i}"),
                scanned_ops: scanned,
                peak_buffered_ops: 0,
            })
        }
        FaultKind::UnderflowWrite => {
            let (scanned, (i, pointer, _)) = pick_bndstr(trace, layout, &mut rng, spec.kind)?;
            Ok(FaultPlan {
                site: i + 1,
                action: FaultAction::Insert(Op::Store {
                    pointer: pointer.wrapping_sub(8),
                    bytes: 8,
                }),
                description: format!("underflow store at base-8 of the bndstr at op {i}"),
                scanned_ops: scanned,
                peak_buffered_ops: 0,
            })
        }
        FaultKind::UseAfterFree => {
            // The dangling access must be far enough downstream that
            // the free has architecturally committed (the machine's
            // ROB is smaller than this window, so in-order retirement
            // forces the bndclr's table clear before the load can
            // issue), and the window must not contain a bndstr that
            // re-signs the same PAC — that would be a legitimate
            // reallocation, not a UAF. The lookahead buffer holds at
            // most `UAF_DELAY_OPS + 1` ops however long the trace is.
            let mut look = Lookahead::batched(trace, UAF_DELAY_OPS, DEFAULT_BATCH_OPS);
            let mut reservoir = Reservoir::new();
            while let Some((i, op)) = look.next_op() {
                let Op::BndClr { pointer } = op else { continue };
                let pac = layout.pac(pointer);
                let reallocated = look.window().any(|o| {
                    matches!(o, Op::BndStr { pointer: q, .. } if layout.pac(*q) == pac)
                });
                if !reallocated {
                    reservoir.offer(&mut rng, (i, pointer));
                }
            }
            let (i, pointer) = reservoir.chosen.ok_or_else(|| {
                AosError::invalid_input(
                    "fault injection",
                    "trace has no bndclr (free) without a same-PAC reallocation \
                     inside the retirement window to anchor a uaf fault on",
                )
            })?;
            let len = look.consumed();
            Ok(FaultPlan {
                site: (i + 1 + UAF_DELAY_OPS).min(len),
                action: FaultAction::Insert(Op::Load {
                    pointer,
                    bytes: 8,
                    chained: false,
                }),
                description: format!("load through the pointer freed by the bndclr at op {i}"),
                scanned_ops: len,
                peak_buffered_ops: look.peak_buffered_ops(),
            })
        }
        FaultKind::DoubleFree => {
            let mut reservoir = Reservoir::new();
            let mut scanned = 0usize;
            for (i, op) in trace.enumerate() {
                scanned = i + 1;
                if let Op::BndClr { pointer } = op {
                    reservoir.offer(&mut rng, (i, pointer));
                }
            }
            let (i, pointer) = reservoir.into_chosen(spec.kind, "bndclr (free)")?;
            Ok(FaultPlan {
                site: i + 1,
                action: FaultAction::Insert(Op::BndClr { pointer }),
                description: format!("second bndclr of the pointer freed at op {i}"),
                scanned_ops: scanned,
                peak_buffered_ops: 0,
            })
        }
        FaultKind::PacTamper => {
            let mut reservoir = Reservoir::new();
            let mut scanned = 0usize;
            for (i, op) in trace.enumerate() {
                scanned = i + 1;
                if signed_access_pointer(&op, layout).is_some() {
                    reservoir.offer(&mut rng, (i, op));
                }
            }
            let (i, op) = reservoir.into_chosen(spec.kind, "signed heap access")?;
            let bit = layout.pac_shift() + (rng.next_u64() % u64::from(layout.pac_size())) as u32;
            Ok(FaultPlan {
                site: i,
                action: FaultAction::Replace(retarget(&op, |p| p ^ (1u64 << bit))),
                description: format!("flipped PAC bit {bit} of the access at op {i}"),
                scanned_ops: scanned,
                peak_buffered_ops: 0,
            })
        }
        FaultKind::AhcForge => {
            let mut reservoir = Reservoir::new();
            let mut scanned = 0usize;
            for (i, op) in trace.enumerate() {
                scanned = i + 1;
                if unsigned_access_pointer(&op, layout).is_some() {
                    reservoir.offer(&mut rng, (i, op));
                }
            }
            let (i, op) = reservoir.into_chosen(spec.kind, "unsigned access")?;
            let forged_ahc = 1 + (rng.next_u64() % 3) as u8;
            let forged_pac = rng.next_u64() % layout.pac_space();
            Ok(FaultPlan {
                site: i,
                action: FaultAction::Replace(retarget(&op, |p| {
                    layout.compose(layout.address(p), forged_pac, forged_ahc)
                })),
                description: format!(
                    "forged AHC={forged_ahc} PAC={forged_pac:#x} onto the access at op {i}"
                ),
                scanned_ops: scanned,
                peak_buffered_ops: 0,
            })
        }
    }
}

/// A faulted trace plus where and what was spliced in. Legacy
/// materialized form — prefer [`plan_fault`] + [`FaultPlan::apply`]
/// on streams.
#[derive(Debug, Clone)]
pub struct Injection {
    /// The transformed op stream.
    pub ops: Vec<Op>,
    /// Index in `ops` of the first injected/modified op.
    pub site: usize,
    /// Human-readable description of the fault, for reports.
    pub description: String,
}

/// Splices the fault described by `spec` into an already-materialized
/// `trace`. Thin compatibility wrapper over [`plan_fault`] +
/// [`FaultPlan::apply`]; errors under the same conditions.
pub fn inject(trace: &[Op], layout: PointerLayout, spec: FaultSpec) -> Result<Injection, AosError> {
    let plan = plan_fault(trace.iter().copied(), layout, spec)?;
    let ops: Vec<Op> = plan.apply(trace.iter().copied()).collect();
    Ok(Injection {
        ops,
        site: plan.site,
        description: plan.description,
    })
}

/// Per-kind RNG stream salt, so the same seed picks independent sites
/// for different kinds.
fn fault_salt(kind: FaultKind) -> u64 {
    match kind {
        FaultKind::OverflowWrite => 0x4F56_464C,
        FaultKind::UnderflowWrite => 0x554E_4446,
        FaultKind::UseAfterFree => 0x5541_4652,
        FaultKind::DoubleFree => 0x4446_5245,
        FaultKind::PacTamper => 0x5041_4354,
        FaultKind::AhcForge => 0x4148_4346,
    }
}

/// Reservoir-scans `trace` for `bndstr` anchors; returns the scanned
/// length and the chosen `(index, pointer, size)`.
///
/// A `bndstr` preceded by a same-PAC `bndclr` within the last
/// [`UAF_DELAY_OPS`] ops is not a valid anchor: the clear may still be
/// in flight in the MCU when the spliced access issues, so the row can
/// hold a stale record of the *previous* (possibly larger) allocation
/// that covers the out-of-bounds address — the fault would then probe
/// a transient microarchitectural window, not spatial enforcement.
/// Tracking the most recent clear per PAC keeps this O(PAC-space),
/// independent of trace length.
fn pick_bndstr(
    trace: impl Iterator<Item = Op>,
    layout: PointerLayout,
    rng: &mut Xoshiro256StarStar,
    kind: FaultKind,
) -> Result<(usize, (usize, u64, u64)), AosError> {
    let mut reservoir = Reservoir::new();
    let mut scanned = 0usize;
    let mut last_clr: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    for (i, op) in trace.enumerate() {
        scanned = i + 1;
        match op {
            Op::BndClr { pointer } => {
                last_clr.insert(layout.pac(pointer), i);
            }
            Op::BndStr { pointer, size } => {
                let settled = last_clr
                    .get(&layout.pac(pointer))
                    .is_none_or(|&c| i - c > UAF_DELAY_OPS);
                if settled {
                    reservoir.offer(rng, (i, pointer, size));
                }
            }
            _ => {}
        }
    }
    Ok((scanned, reservoir.into_chosen(kind, "bndstr (allocation)")?))
}

fn signed_access_pointer(op: &Op, layout: PointerLayout) -> Option<u64> {
    match *op {
        Op::Load { pointer, .. } | Op::Store { pointer, .. } if layout.is_signed(pointer) => {
            Some(pointer)
        }
        _ => None,
    }
}

fn unsigned_access_pointer(op: &Op, layout: PointerLayout) -> Option<u64> {
    match *op {
        Op::Load { pointer, .. } | Op::Store { pointer, .. } if !layout.is_signed(pointer) => {
            Some(pointer)
        }
        _ => None,
    }
}

/// Rewrites the pointer of a Load/Store in place, preserving every
/// other field.
fn retarget(op: &Op, f: impl Fn(u64) -> u64) -> Op {
    match *op {
        Op::Load {
            pointer,
            bytes,
            chained,
        } => Op::Load {
            pointer: f(pointer),
            bytes,
            chained,
        },
        Op::Store { pointer, bytes } => Op::Store {
            pointer: f(pointer),
            bytes,
        },
        _ => unreachable!("retarget only applies to data accesses"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aos_isa::SafetyConfig;
    use aos_workloads::{profile::by_name, TraceGenerator};

    fn aos_stream() -> TraceGenerator {
        let p = by_name("hmmer").unwrap();
        TraceGenerator::new(p, SafetyConfig::Aos, 0.004)
    }

    fn aos_trace() -> Vec<Op> {
        aos_stream().collect()
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        let trace = aos_trace();
        let layout = PointerLayout::default();
        for kind in FaultKind::ALL {
            let spec = FaultSpec { kind, seed: 7 };
            let a = inject(&trace, layout, spec).unwrap();
            let b = inject(&trace, layout, spec).unwrap();
            assert_eq!(a.site, b.site, "{kind}");
            assert_eq!(a.ops, b.ops, "{kind}");
            let c = inject(&trace, layout, FaultSpec { kind, seed: 8 }).unwrap();
            // Different seeds are allowed to coincide for tiny traces,
            // but the description must still be self-consistent.
            assert!(c.site < c.ops.len());
        }
    }

    #[test]
    fn spliced_faults_grow_the_trace_by_one_op() {
        let trace = aos_trace();
        let layout = PointerLayout::default();
        for kind in [
            FaultKind::OverflowWrite,
            FaultKind::UnderflowWrite,
            FaultKind::UseAfterFree,
            FaultKind::DoubleFree,
        ] {
            let inj = inject(&trace, layout, FaultSpec { kind, seed: 1 }).unwrap();
            assert_eq!(inj.ops.len(), trace.len() + 1, "{kind}");
        }
        for kind in [FaultKind::PacTamper, FaultKind::AhcForge] {
            let inj = inject(&trace, layout, FaultSpec { kind, seed: 1 }).unwrap();
            assert_eq!(inj.ops.len(), trace.len(), "{kind} rewrites in place");
            assert_ne!(inj.ops[inj.site], trace[inj.site], "{kind}");
        }
    }

    #[test]
    fn streamed_apply_matches_materialized_inject() {
        let trace = aos_trace();
        let layout = PointerLayout::default();
        for kind in FaultKind::ALL {
            let spec = FaultSpec { kind, seed: 11 };
            let plan = plan_fault(aos_stream(), layout, spec).unwrap();
            let streamed: Vec<Op> = plan.apply(aos_stream()).collect();
            let materialized = inject(&trace, layout, spec).unwrap();
            assert_eq!(plan.site, materialized.site, "{kind}");
            assert_eq!(plan.description, materialized.description, "{kind}");
            assert_eq!(streamed, materialized.ops, "{kind}");
            assert_eq!(plan.scanned_ops, trace.len(), "{kind}");
        }
    }

    #[test]
    fn uaf_planner_memory_is_bounded_by_the_window() {
        let plan = plan_fault(
            aos_stream(),
            PointerLayout::default(),
            FaultSpec {
                kind: FaultKind::UseAfterFree,
                seed: 3,
            },
        )
        .unwrap();
        assert!(
            plan.scanned_ops > 4 * (UAF_DELAY_OPS + 1),
            "trace too short ({} ops) for the bound to mean anything",
            plan.scanned_ops
        );
        assert!(
            plan.peak_buffered_ops <= UAF_DELAY_OPS + 1,
            "planner buffered {} ops, window is {}",
            plan.peak_buffered_ops,
            UAF_DELAY_OPS
        );
    }

    #[test]
    fn uninstrumented_trace_yields_typed_error_not_panic() {
        let p = by_name("hmmer").unwrap();
        let baseline: Vec<Op> = TraceGenerator::new(p, SafetyConfig::Baseline, 0.004).collect();
        let err = inject(
            &baseline,
            PointerLayout::default(),
            FaultSpec {
                kind: FaultKind::OverflowWrite,
                seed: 0,
            },
        )
        .unwrap_err();
        assert!(matches!(err, AosError::InvalidInput { .. }));
    }

    #[test]
    fn kind_names_roundtrip() {
        for kind in FaultKind::ALL {
            assert_eq!(FaultKind::parse(kind.name()).unwrap(), kind);
        }
        assert!(FaultKind::parse("rowhammer").is_err());
    }
}
