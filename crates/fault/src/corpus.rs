//! Corruption injectors for persistent trace corpora
//! ([`aos_isa::corpus`]): at-rest bit rot inside a stored op block,
//! and the power-loss truncation that cuts a file mid-frame.
//!
//! The corpus format's contract under these faults is *quarantine,
//! never crash, never mis-replay*: a flipped bit must surface as a
//! typed [`AosError::Corruption`](aos_util::AosError) confined to the
//! damaged entry (sibling entries keep replaying bit-identically), and
//! a truncated file must be rejected at open rather than served
//! short. The injectors here edit the file through the same frame
//! walk the reader uses, so tests can aim a fault at "block `k` of
//! entry `e`" without hard-coding byte offsets.

use std::path::Path;

use aos_util::AosError;

/// Frame kind byte of an op block (mirrors the corpus format; the
/// constant is re-stated here so the injector stays an independent
/// check on the reader rather than a consumer of its internals).
const KIND_OP_BLOCK: u8 = 1;

fn io_err(path: &Path, e: impl std::fmt::Display) -> AosError {
    AosError::Io {
        context: path.display().to_string(),
        detail: e.to_string(),
    }
}

/// One frame located by [`walk_entry_frames`]: where its payload
/// lives in the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameSpan {
    /// Frame kind byte.
    pub kind: u8,
    /// File offset of the first payload byte (after len, CRC, kind).
    pub payload_offset: u64,
    /// Payload length in bytes.
    pub payload_len: u32,
}

/// Walks the frame sequence of one corpus entry starting at
/// `entry_offset` (an [`EntryMeta::offset`](aos_isa::corpus::EntryMeta))
/// and returns each frame's span, ending after the entry trailer
/// (kind 2).
///
/// # Errors
///
/// [`AosError::Corruption`] when the bytes do not parse as frames —
/// the injector refuses to "corrupt" a file it cannot interpret.
pub fn walk_entry_frames(bytes: &[u8], entry_offset: u64, path: &Path) -> Result<Vec<FrameSpan>, AosError> {
    let mut frames = Vec::new();
    let mut at = entry_offset as usize;
    loop {
        if at + 9 > bytes.len() {
            return Err(AosError::corruption(
                format!("corpus {}", path.display()),
                "entry frames run past end of file",
            ));
        }
        let len = u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]]);
        let kind = bytes[at + 8];
        let payload_offset = at as u64 + 9;
        let payload_len = len.saturating_sub(1);
        if payload_offset as usize + payload_len as usize > bytes.len() {
            return Err(AosError::corruption(
                format!("corpus {}", path.display()),
                "frame payload runs past end of file",
            ));
        }
        frames.push(FrameSpan {
            kind,
            payload_offset,
            payload_len,
        });
        at = payload_offset as usize + payload_len as usize;
        if kind == 2 {
            return Ok(frames);
        }
        if frames.len() > 1 << 20 {
            return Err(AosError::corruption(
                format!("corpus {}", path.display()),
                "entry never reaches a trailer frame",
            ));
        }
    }
}

/// Flips one bit inside stored op block `block_index` of the entry at
/// `entry_offset`, leaving the frame's CRC stale — the at-rest bit-rot
/// fault. Returns the absolute file offset of the damaged byte.
///
/// # Errors
///
/// [`AosError::Io`] when the file cannot be read or rewritten,
/// [`AosError::InvalidInput`] when the entry has no such block or the
/// bit offset falls outside the block,
/// [`AosError::Corruption`] when the file does not parse as frames.
pub fn flip_block_bit(
    path: impl AsRef<Path>,
    entry_offset: u64,
    block_index: u32,
    bit_offset: u64,
) -> Result<u64, AosError> {
    let path = path.as_ref();
    let mut bytes = std::fs::read(path).map_err(|e| io_err(path, e))?;
    let frames = walk_entry_frames(&bytes, entry_offset, path)?;
    let block = frames
        .iter()
        .filter(|f| f.kind == KIND_OP_BLOCK)
        .nth(block_index as usize)
        .ok_or_else(|| {
            AosError::invalid_input(
                "corpus fault",
                format!("entry has no op block {block_index}"),
            )
        })?;
    let byte = bit_offset / 8;
    if byte >= block.payload_len as u64 {
        return Err(AosError::invalid_input(
            "corpus fault",
            format!(
                "bit offset {bit_offset} outside block of {} bytes",
                block.payload_len
            ),
        ));
    }
    let target = block.payload_offset + byte;
    bytes[target as usize] ^= 1u8 << (bit_offset % 8);
    std::fs::write(path, &bytes).map_err(|e| io_err(path, e))?;
    Ok(target)
}

/// Truncates the file in the middle of op block `block_index` of the
/// entry at `entry_offset` — the power-loss fault that cuts a frame
/// (and everything after it, including the index) short. Returns the
/// new file length.
///
/// # Errors
///
/// Same conditions as [`flip_block_bit`].
pub fn truncate_mid_frame(
    path: impl AsRef<Path>,
    entry_offset: u64,
    block_index: u32,
) -> Result<u64, AosError> {
    let path = path.as_ref();
    let bytes = std::fs::read(path).map_err(|e| io_err(path, e))?;
    let frames = walk_entry_frames(&bytes, entry_offset, path)?;
    let block = frames
        .iter()
        .filter(|f| f.kind == KIND_OP_BLOCK)
        .nth(block_index as usize)
        .ok_or_else(|| {
            AosError::invalid_input(
                "corpus fault",
                format!("entry has no op block {block_index}"),
            )
        })?;
    let cut = block.payload_offset + (block.payload_len as u64) / 2;
    std::fs::write(path, &bytes[..cut as usize]).map_err(|e| io_err(path, e))?;
    Ok(cut)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aos_isa::corpus::{CorpusReader, CorpusWriter};
    use aos_isa::Op;
    use aos_util::{Counter, Telemetry};
    use std::path::PathBuf;

    fn ops(n: usize) -> Vec<Op> {
        (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    Op::Load {
                        pointer: 0x4000 + i as u64,
                        bytes: 8,
                        chained: false,
                    }
                } else {
                    Op::IntAlu
                }
            })
            .collect()
    }

    fn temp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("aos-fault-corpus-tests");
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir.join(name)
    }

    fn write_two_entry_corpus(path: &PathBuf) -> (u64, u64) {
        let mut w = CorpusWriter::create(path, Telemetry::disabled()).expect("create");
        let a = w.record("victim", "", ops(200).into_iter()).expect("a");
        let b = w.record("bystander", "", ops(64).into_iter()).expect("b");
        w.finish().expect("finish");
        (a.offset, b.offset)
    }

    #[test]
    fn bit_flip_quarantines_only_the_damaged_entry() {
        let path = temp("flip.aosc");
        let (victim_offset, _) = write_two_entry_corpus(&path);
        flip_block_bit(&path, victim_offset, 0, 123).expect("inject");

        let t = Telemetry::enabled();
        let r = CorpusReader::open(&path, t.clone()).expect("index survives a payload flip");
        let checks = r.verify();
        assert_eq!(checks.len(), 2);
        let victim = checks.iter().find(|c| c.entry.name == "victim").unwrap();
        let bystander = checks.iter().find(|c| c.entry.name == "bystander").unwrap();
        assert!(
            matches!(victim.status, Err(aos_util::AosError::Corruption { .. })),
            "damaged entry must quarantine with a typed error: {:?}",
            victim.status
        );
        assert!(bystander.status.is_ok(), "sibling entry must stay clean");
        assert!(t.snapshot().counter(Counter::CorpusCrcFailures) >= 1);

        // No mis-replay: the corrupt block yields its error, zero ops.
        let entry = r.find("victim").unwrap().clone();
        let yielded = r
            .replay(&entry)
            .expect("entry header itself is intact")
            .filter(|item| item.is_ok())
            .count();
        assert_eq!(yielded, 0, "no op from a corrupt block may replay");

        // And the bystander still replays in full.
        let entry = r.find("bystander").unwrap().clone();
        let replayed: Vec<Op> = r
            .replay(&entry)
            .expect("replay")
            .collect::<Result<_, _>>()
            .expect("clean");
        assert_eq!(replayed, ops(64));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mid_frame_truncation_is_rejected_at_open_not_served_short() {
        let path = temp("cut.aosc");
        let (victim_offset, _) = write_two_entry_corpus(&path);
        truncate_mid_frame(&path, victim_offset, 0).expect("inject");
        let err = CorpusReader::open(&path, Telemetry::disabled())
            .err()
            .expect("truncated corpus must not open");
        assert!(
            matches!(err, AosError::Corruption { .. }),
            "typed corruption, not a panic: {err}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn injector_refuses_out_of_range_targets() {
        let path = temp("range.aosc");
        let (victim_offset, _) = write_two_entry_corpus(&path);
        assert!(matches!(
            flip_block_bit(&path, victim_offset, 9, 0),
            Err(AosError::InvalidInput { .. })
        ));
        assert!(matches!(
            flip_block_bit(&path, victim_offset, 0, u64::MAX),
            Err(AosError::InvalidInput { .. })
        ));
        // The uncorrupted file still verifies clean afterwards.
        let r = CorpusReader::open(&path, Telemetry::disabled()).expect("open");
        assert!(r.verify().iter().all(|c| c.status.is_ok()));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn frame_walk_matches_writer_layout() {
        let path = temp("walk.aosc");
        let (victim_offset, _) = write_two_entry_corpus(&path);
        let bytes = std::fs::read(&path).unwrap();
        let frames = walk_entry_frames(&bytes, victim_offset, &path).expect("walk");
        // header, one op block (200 ops < BLOCK_OPS), trailer
        assert_eq!(frames.iter().map(|f| f.kind).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(frames[2].payload_len, 12, "trailer is op_count + block_count");
        std::fs::remove_file(&path).ok();
    }
}
