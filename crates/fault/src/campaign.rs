//! The fault-injection campaign: a `kind × seed × system` grid run
//! through the hardened campaign runner, so each trial inherits the
//! runner's panic isolation, timeout and retry machinery, and the
//! detection summary rides the `aos-campaign-report/v3` document as a
//! `fault_detection` annotation.

use std::sync::Arc;

use aos_core::experiment::campaign::{
    run_campaign_custom, CampaignCell, CampaignOptions, CampaignReport, CellOutput,
};
use aos_core::experiment::SystemUnderTest;
use aos_isa::stream::{BufferedOps, OpStream};
use aos_isa::{Op, SafetyConfig};
use aos_ptrauth::PointerLayout;
use aos_sim::Machine;
use aos_util::AosError;
use aos_workloads::{TraceGenerator, WorkloadProfile};

use crate::inject::{plan_fault, FaultKind, FaultPlan, FaultSpec};
use crate::oracle::{FaultTrial, TrialMatrix};

/// What to sweep.
#[derive(Debug, Clone)]
pub struct FaultCampaignConfig {
    /// The workload whose traces are faulted.
    pub profile: WorkloadProfile,
    /// Window scale for the generated traces.
    pub scale: f64,
    /// Fault classes to inject.
    pub kinds: Vec<FaultKind>,
    /// Seeds per fault class.
    pub seeds: Vec<u64>,
    /// Systems to replay each faulted trace on. Defaults pair the
    /// protected AOS machine with the unprotected Baseline.
    pub systems: Vec<SafetyConfig>,
    /// Runner execution knobs (threads, timeout, retries).
    pub options: CampaignOptions,
    /// Whether each cell's machine records pipeline telemetry (the
    /// verdicts are identical either way; the v3 report then carries
    /// real counter columns instead of zeros).
    pub telemetry: bool,
}

impl FaultCampaignConfig {
    /// The standard sweep for one workload: every fault class, the
    /// given seeds, AOS vs Baseline.
    pub fn standard(profile: WorkloadProfile, scale: f64, seeds: Vec<u64>) -> Self {
        Self {
            profile,
            scale,
            kinds: FaultKind::ALL.to_vec(),
            seeds,
            systems: vec![SafetyConfig::Aos, SafetyConfig::Baseline],
            options: CampaignOptions::default(),
            telemetry: false,
        }
    }
}

/// The campaign's product: the annotated v3 report plus the oracle
/// matrix it summarizes.
#[derive(Debug, Clone)]
pub struct FaultCampaignOutcome {
    /// The v3 campaign report, annotated with `fault_detection`.
    pub report: CampaignReport,
    /// Every trial's verdict.
    pub matrix: TrialMatrix,
}

/// Runs the grid, fully streaming: each `(kind, seed)` fault is
/// planned **once** from one `O(window)` scan of the deterministic
/// trace stream, then every cell regenerates the stream lazily inside
/// its worker and replays it through the plan's splice adapter — no
/// trace is ever materialized, so campaign peak memory is
/// `threads × O(window)` instead of `cells × O(trace)`. The clean
/// stream is replayed once per system up front for the false-positive
/// reference.
pub fn run_fault_campaign(config: &FaultCampaignConfig) -> Result<FaultCampaignOutcome, AosError> {
    if config.kinds.is_empty() || config.seeds.is_empty() || config.systems.is_empty() {
        return Err(AosError::invalid_input(
            "fault campaign",
            "kinds, seeds and systems must all be non-empty",
        ));
    }
    let layout = PointerLayout::default();
    let stream = |profile: &WorkloadProfile, scale: f64| {
        TraceGenerator::new(profile, SafetyConfig::Aos, scale)
    };

    // Clean-reference violations per system (the false-positive gate).
    let mut clean_violations = Vec::with_capacity(config.systems.len());
    for &system in &config.systems {
        let sut = SystemUnderTest::scaled(system, config.scale);
        let stats = Machine::new(sut.machine_config()).run(stream(&config.profile, config.scale));
        clean_violations.push(stats.violations);
    }

    // One campaign cell per (kind, seed, system); the cell's label
    // carries the workload/system pair, the side tables the fault.
    // Plans are per (kind, seed) — shared by that pair's cells across
    // every system, so each fault is planned once, not once per cell.
    let mut cells = Vec::new();
    let mut specs = Vec::new();
    let mut plans: Vec<Result<FaultPlan, AosError>> = Vec::new();
    for &kind in &config.kinds {
        for &seed in &config.seeds {
            let spec = FaultSpec { kind, seed };
            plans.push(plan_fault(
                stream(&config.profile, config.scale),
                layout,
                spec,
            ));
            for (si, &system) in config.systems.iter().enumerate() {
                cells.push(CampaignCell {
                    profile: config.profile,
                    sut: SystemUnderTest::scaled(system, config.scale)
                        .with_telemetry(config.telemetry),
                });
                specs.push((spec, si));
            }
        }
    }

    // A failed plan is reported through its cells' Failed outcome
    // (via panic + catch_unwind) instead of aborting the sweep.
    let plans = Arc::new(plans);
    let systems_per_plan = config.systems.len();
    let runner = {
        let plans = Arc::clone(&plans);
        Arc::new(move |index: usize, cell: &CampaignCell| -> CellOutput {
            let plan = match &plans[index / systems_per_plan] {
                Ok(plan) => plan,
                Err(e) => panic!("{e}"),
            };
            let mut faulty = plan
                .apply(TraceGenerator::new(
                    &cell.profile,
                    SafetyConfig::Aos,
                    cell.sut.scale,
                ))
                .metered();
            let stats = Machine::new(cell.sut.machine_config()).run(&mut faulty);
            CellOutput {
                stats,
                trace_ops: faulty.ops(),
                peak_trace_bytes: faulty.peak_buffered_ops() as u64
                    * std::mem::size_of::<Op>() as u64,
            }
        })
    };

    let mut report = run_campaign_custom(&cells, &config.options, &|_| {}, runner);

    let mut matrix = TrialMatrix::default();
    for (index, result) in report.results.iter().enumerate() {
        let (spec, si) = specs[index];
        if let Some(stats) = result.stats() {
            matrix.push(FaultTrial {
                spec,
                system: config.systems[si],
                clean_violations: clean_violations[si],
                faulty_violations: stats.violations,
                description: plans[index / systems_per_plan]
                    .as_ref()
                    .map(|p| p.description.clone())
                    .unwrap_or_else(|_| "<no description recorded>".to_string()),
            });
        }
    }
    report.annotate("fault_detection", matrix.to_json_value());
    Ok(FaultCampaignOutcome { report, matrix })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aos_workloads::profile::by_name;

    #[test]
    fn standard_sweep_is_sound_and_annotated() {
        let config = FaultCampaignConfig {
            options: CampaignOptions::with_threads(4),
            ..FaultCampaignConfig::standard(*by_name("hmmer").unwrap(), 0.004, vec![1, 2])
        };
        let outcome = run_fault_campaign(&config).unwrap();
        assert_eq!(outcome.report.results.len(), 6 * 2 * 2);
        assert_eq!(outcome.report.failed(), 0);
        assert!(outcome.matrix.is_sound(), "{}", outcome.matrix.to_json_value());
        // Baseline must miss every fault: that asymmetry is the claim.
        assert!(outcome
            .matrix
            .unprotected()
            .all(|t| t.verdict() == crate::oracle::Verdict::Missed));
        let json = outcome.report.to_json();
        assert!(json.contains("\"fault_detection\": {\"trials\": 24,"));
        assert!(json.contains("\"schema\": \"aos-campaign-report/v3\""));
        // Every cell streamed: ops were metered and the pipeline never
        // held more than a window of trace (the clean trace here is
        // tens of thousands of ops).
        for r in &outcome.report.results {
            assert!(r.trace_ops() > 10_000, "{}", r.cell.label());
            let peak_ops = r.peak_trace_bytes() / std::mem::size_of::<Op>() as u64;
            assert!(peak_ops > 0 && peak_ops < 1024, "peak {peak_ops} ops");
        }
    }

    #[test]
    fn empty_grid_is_a_typed_error() {
        let mut config = FaultCampaignConfig::standard(*by_name("hmmer").unwrap(), 0.004, vec![]);
        config.options = CampaignOptions::with_threads(1);
        assert!(matches!(
            run_fault_campaign(&config),
            Err(AosError::InvalidInput { .. })
        ));
    }
}
