//! The fault-injection campaign: a `kind × seed × system` grid run
//! through the hardened campaign runner, so each trial inherits the
//! runner's panic isolation, timeout and retry machinery, and the
//! detection summary rides the `aos-campaign-report/v2` document as a
//! `fault_detection` annotation.

use std::sync::Arc;
use std::sync::Mutex;

use aos_core::experiment::campaign::{
    run_campaign_custom, CampaignCell, CampaignOptions, CampaignReport,
};
use aos_core::experiment::SystemUnderTest;
use aos_isa::SafetyConfig;
use aos_ptrauth::PointerLayout;
use aos_sim::Machine;
use aos_util::AosError;
use aos_workloads::{TraceGenerator, WorkloadProfile};

use crate::inject::{inject, FaultKind, FaultSpec};
use crate::oracle::{FaultTrial, TrialMatrix};

/// What to sweep.
#[derive(Debug, Clone)]
pub struct FaultCampaignConfig {
    /// The workload whose traces are faulted.
    pub profile: WorkloadProfile,
    /// Window scale for the generated traces.
    pub scale: f64,
    /// Fault classes to inject.
    pub kinds: Vec<FaultKind>,
    /// Seeds per fault class.
    pub seeds: Vec<u64>,
    /// Systems to replay each faulted trace on. Defaults pair the
    /// protected AOS machine with the unprotected Baseline.
    pub systems: Vec<SafetyConfig>,
    /// Runner execution knobs (threads, timeout, retries).
    pub options: CampaignOptions,
}

impl FaultCampaignConfig {
    /// The standard sweep for one workload: every fault class, the
    /// given seeds, AOS vs Baseline.
    pub fn standard(profile: WorkloadProfile, scale: f64, seeds: Vec<u64>) -> Self {
        Self {
            profile,
            scale,
            kinds: FaultKind::ALL.to_vec(),
            seeds,
            systems: vec![SafetyConfig::Aos, SafetyConfig::Baseline],
            options: CampaignOptions::default(),
        }
    }
}

/// The campaign's product: the annotated v2 report plus the oracle
/// matrix it summarizes.
#[derive(Debug, Clone)]
pub struct FaultCampaignOutcome {
    /// The v2 campaign report, annotated with `fault_detection`.
    pub report: CampaignReport,
    /// Every trial's verdict.
    pub matrix: TrialMatrix,
}

/// Runs the grid. Each cell generates the AOS-instrumented trace,
/// injects its `(kind, seed)` fault, and replays it on its system's
/// machine; the clean trace is replayed once per system up front for
/// the false-positive reference.
pub fn run_fault_campaign(config: &FaultCampaignConfig) -> Result<FaultCampaignOutcome, AosError> {
    if config.kinds.is_empty() || config.seeds.is_empty() || config.systems.is_empty() {
        return Err(AosError::invalid_input(
            "fault campaign",
            "kinds, seeds and systems must all be non-empty",
        ));
    }
    let layout = PointerLayout::default();
    let trace: Vec<_> =
        TraceGenerator::new(&config.profile, SafetyConfig::Aos, config.scale).collect();

    // Clean-reference violations per system (the false-positive gate).
    let mut clean_violations = Vec::with_capacity(config.systems.len());
    for &system in &config.systems {
        let sut = SystemUnderTest::scaled(system, config.scale);
        let stats = Machine::new(sut.machine_config()).run(trace.iter().copied());
        clean_violations.push(stats.violations);
    }

    // One campaign cell per (kind, seed, system); the cell's label
    // carries the workload/system pair, the side table the fault.
    let mut cells = Vec::new();
    let mut specs = Vec::new();
    for &kind in &config.kinds {
        for &seed in &config.seeds {
            for (si, &system) in config.systems.iter().enumerate() {
                cells.push(CampaignCell {
                    profile: config.profile,
                    sut: SystemUnderTest::scaled(system, config.scale),
                });
                specs.push((FaultSpec { kind, seed }, si));
            }
        }
    }

    // Each injection error is reported through the cell's Failed
    // outcome (via panic + catch_unwind) instead of aborting the
    // sweep; descriptions are collected for the oracle.
    let descriptions: Arc<Mutex<Vec<Option<String>>>> =
        Arc::new(Mutex::new(vec![None; cells.len()]));
    let runner = {
        let trace = Arc::new(trace);
        let specs = specs.clone();
        let descriptions = Arc::clone(&descriptions);
        Arc::new(move |index: usize, cell: &CampaignCell| {
            let (spec, _) = specs[index];
            let injection = match inject(&trace, layout, spec) {
                Ok(injection) => injection,
                Err(e) => panic!("{e}"),
            };
            descriptions.lock().expect("description table poisoned")[index] =
                Some(injection.description);
            Machine::new(cell.sut.machine_config()).run(injection.ops)
        })
    };

    let mut report = run_campaign_custom(&cells, &config.options, &|_| {}, runner);

    let mut matrix = TrialMatrix::default();
    let descriptions = descriptions.lock().expect("description table poisoned");
    for (index, result) in report.results.iter().enumerate() {
        let (spec, si) = specs[index];
        if let Some(stats) = result.stats() {
            matrix.push(FaultTrial {
                spec,
                system: config.systems[si],
                clean_violations: clean_violations[si],
                faulty_violations: stats.violations,
                description: descriptions[index]
                    .clone()
                    .unwrap_or_else(|| "<no description recorded>".to_string()),
            });
        }
    }
    report.annotate("fault_detection", matrix.to_json_value());
    Ok(FaultCampaignOutcome { report, matrix })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aos_workloads::profile::by_name;

    #[test]
    fn standard_sweep_is_sound_and_annotated() {
        let config = FaultCampaignConfig {
            options: CampaignOptions::with_threads(4),
            ..FaultCampaignConfig::standard(*by_name("hmmer").unwrap(), 0.004, vec![1, 2])
        };
        let outcome = run_fault_campaign(&config).unwrap();
        assert_eq!(outcome.report.results.len(), 6 * 2 * 2);
        assert_eq!(outcome.report.failed(), 0);
        assert!(outcome.matrix.is_sound(), "{}", outcome.matrix.to_json_value());
        // Baseline must miss every fault: that asymmetry is the claim.
        assert!(outcome
            .matrix
            .unprotected()
            .all(|t| t.verdict() == crate::oracle::Verdict::Missed));
        let json = outcome.report.to_json();
        assert!(json.contains("\"fault_detection\": {\"trials\": 24,"));
        assert!(json.contains("\"schema\": \"aos-campaign-report/v2\""));
    }

    #[test]
    fn empty_grid_is_a_typed_error() {
        let mut config = FaultCampaignConfig::standard(*by_name("hmmer").unwrap(), 0.004, vec![]);
        config.options = CampaignOptions::with_threads(1);
        assert!(matches!(
            run_fault_campaign(&config),
            Err(AosError::InvalidInput { .. })
        ));
    }
}
