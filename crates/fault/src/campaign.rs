//! The fault-injection campaign: a `kind × seed × system` grid run
//! through the hardened campaign runner, so each trial inherits the
//! runner's panic isolation, timeout and retry machinery, and the
//! detection summary rides the `aos-campaign-report/v5` document as a
//! `fault_detection` annotation.

use std::sync::Arc;

use aos_core::experiment::campaign::{
    run_campaign_custom, CampaignCell, CampaignOptions, CampaignReport, CellOutput,
};
use aos_core::experiment::SystemUnderTest;
use aos_isa::stream::{BufferedOps, OpStream};
use aos_isa::{Op, SafetyConfig};
use aos_lint::{MatrixScan, Policy, Rule};
use aos_ptrauth::PointerLayout;
use aos_sim::Machine;
use aos_util::{AosError, Telemetry};
use aos_workloads::{TraceGenerator, WorkloadProfile};

use crate::inject::{plan_fault_batched, FaultKind, FaultPlan, FaultSpec};
use crate::oracle::{FaultTrial, TrialMatrix};

/// What to sweep.
#[derive(Debug, Clone)]
pub struct FaultCampaignConfig {
    /// The workload whose traces are faulted.
    pub profile: WorkloadProfile,
    /// Window scale for the generated traces.
    pub scale: f64,
    /// Fault classes to inject.
    pub kinds: Vec<FaultKind>,
    /// Seeds per fault class.
    pub seeds: Vec<u64>,
    /// Systems to replay each faulted trace on. Defaults pair the
    /// protected AOS machine with the unprotected Baseline.
    pub systems: Vec<SafetyConfig>,
    /// Static policies to cross-check every stream against. The AOS
    /// policy is always scanned (it backs the legacy
    /// `lint_cross_check`); listing more policies here adds their
    /// verdicts to the same single-pass matrix scan and to the
    /// `policy_cross_check` report annotation.
    pub policies: Vec<Policy>,
    /// Runner execution knobs (threads, timeout, retries).
    pub options: CampaignOptions,
    /// Whether each cell's machine records pipeline telemetry (the
    /// verdicts are identical either way; the v4 report then carries
    /// real counter columns instead of zeros).
    pub telemetry: bool,
}

impl FaultCampaignConfig {
    /// The standard sweep for one workload: every fault class, the
    /// given seeds, AOS vs Baseline.
    pub fn standard(profile: WorkloadProfile, scale: f64, seeds: Vec<u64>) -> Self {
        Self {
            profile,
            scale,
            kinds: FaultKind::ALL.to_vec(),
            seeds,
            systems: vec![SafetyConfig::Aos, SafetyConfig::Baseline],
            policies: vec![Policy::Aos],
            options: CampaignOptions::default(),
            telemetry: false,
        }
    }
}

/// The campaign's product: the annotated v4 report plus the oracle
/// matrix it summarizes and the static-lint cross-check.
#[derive(Debug, Clone)]
pub struct FaultCampaignOutcome {
    /// The v4 campaign report, annotated with `fault_detection` and
    /// `lint_cross_check`.
    pub report: CampaignReport,
    /// Every trial's verdict.
    pub matrix: TrialMatrix,
    /// The differential static-analysis cross-check: what `aos-lint`
    /// sees in the same clean and faulted streams.
    pub lint: LintCrossCheck,
    /// Per-policy cross-checks, one per configured [`Policy`], in
    /// [`Policy::ALL`] order. Each policy's verdicts come from the
    /// same single-pass matrix scan as the legacy `lint` field.
    pub policies: Vec<PolicyCrossCheck>,
}

/// How the static linter relates to one [`FaultKind`]: either the
/// fault is a protocol break the linter sees without running a
/// machine, or it is a runtime-only phenomenon the dynamic oracle
/// must catch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintClass {
    /// Every seeded instance raised at least one lint diagnostic.
    StaticallyDetectable,
    /// No seeded instance raised any diagnostic: only the machine's
    /// bounds check can see it.
    DynamicOnly,
    /// Some seeds flagged, some not — the classification is unstable
    /// and the campaign's consistency gate fails.
    Mixed,
}

impl LintClass {
    /// The *pinned* static/dynamic split of the six base fault kinds
    /// — the design fact the differential harness and the strict gate
    /// defend. Spatial faults splice protocol-legal accesses (only
    /// the machine's bounds check can see an address is wrong);
    /// temporal and forgery faults break the Fig. 7 lifecycle itself,
    /// which the linter proves without running a machine.
    pub fn expected_for(kind: FaultKind) -> LintClass {
        match kind {
            FaultKind::OverflowWrite | FaultKind::UnderflowWrite => LintClass::DynamicOnly,
            FaultKind::UseAfterFree
            | FaultKind::DoubleFree
            | FaultKind::PacTamper
            | FaultKind::AhcForge => LintClass::StaticallyDetectable,
        }
    }
}

/// The exact lint rules each base fault kind is pinned to fire (in
/// taxonomy order; empty for the dynamic-only kinds). The companion
/// of [`LintClass::expected_for`].
pub fn expected_lint_rules(kind: FaultKind) -> &'static [Rule] {
    match kind {
        FaultKind::OverflowWrite | FaultKind::UnderflowWrite => &[],
        FaultKind::UseAfterFree => &[Rule::AccessAfterClear],
        FaultKind::DoubleFree => &[Rule::DoubleBndclr, Rule::UnbalancedAtEnd],
        FaultKind::PacTamper => &[Rule::UnknownPac],
        FaultKind::AhcForge => &[Rule::UnknownPac],
    }
}

/// The pinned static rules each policy fires on each base fault kind
/// — the per-policy analogue of [`expected_lint_rules`], in wire
/// names because every policy owns its own taxonomy. An empty slice
/// pins the kind as invisible to that policy's static model:
///
/// - spatial faults are protocol-clean under every policy;
/// - `use-after-free` splits CryptSan (revoked key — caught) from
///   PACSan (the Fig. 7b re-sign launders the seal — missed);
/// - `double-free` is caught by everything with a revocation notion,
///   i.e. all but PACTight;
/// - the forgery kinds are caught by all four (an unseen PAC fails
///   every model's provenance check).
pub fn expected_policy_rules(policy: Policy, kind: FaultKind) -> &'static [&'static str] {
    match policy {
        Policy::Aos => match kind {
            FaultKind::OverflowWrite | FaultKind::UnderflowWrite => &[],
            FaultKind::UseAfterFree => &["access-after-clear"],
            FaultKind::DoubleFree => &["double-bndclr", "unbalanced-at-end"],
            FaultKind::PacTamper | FaultKind::AhcForge => &["unknown-pac"],
        },
        Policy::CryptSan => match kind {
            FaultKind::OverflowWrite | FaultKind::UnderflowWrite => &[],
            FaultKind::UseAfterFree => &["revoked-key"],
            FaultKind::DoubleFree => &["double-revoke"],
            FaultKind::PacTamper | FaultKind::AhcForge => &["unallocated-key"],
        },
        Policy::PacSan => match kind {
            FaultKind::OverflowWrite | FaultKind::UnderflowWrite | FaultKind::UseAfterFree => &[],
            FaultKind::DoubleFree => &["double-invalidate"],
            FaultKind::PacTamper | FaultKind::AhcForge => &["unsealed-pointer"],
        },
        Policy::PacTight => match kind {
            FaultKind::OverflowWrite
            | FaultKind::UnderflowWrite
            | FaultKind::UseAfterFree
            | FaultKind::DoubleFree => &[],
            FaultKind::PacTamper | FaultKind::AhcForge => &["forged-pointer"],
        },
    }
}

/// The pinned classification implied by [`expected_policy_rules`]: a
/// kind with pinned rules is statically detectable under the policy,
/// one without is dynamic-only.
pub fn expected_policy_class(policy: Policy, kind: FaultKind) -> LintClass {
    if expected_policy_rules(policy, kind).is_empty() {
        LintClass::DynamicOnly
    } else {
        LintClass::StaticallyDetectable
    }
}

impl std::fmt::Display for LintClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            LintClass::StaticallyDetectable => "static",
            LintClass::DynamicOnly => "dynamic-only",
            LintClass::Mixed => "mixed",
        })
    }
}

/// The lint verdicts for one fault kind across the campaign's seeds.
#[derive(Debug, Clone)]
pub struct LintKindCheck {
    /// The fault class.
    pub kind: FaultKind,
    /// Seeds whose plan succeeded and whose faulted stream was
    /// linted.
    pub seeds: usize,
    /// Seeds whose faulted stream raised at least one diagnostic.
    pub flagged: usize,
    /// Union of rule names that fired, in taxonomy order.
    pub rules: Vec<&'static str>,
}

impl LintKindCheck {
    /// The kind's static-vs-dynamic classification.
    pub fn classification(&self) -> LintClass {
        if self.flagged == 0 {
            LintClass::DynamicOnly
        } else if self.flagged == self.seeds {
            LintClass::StaticallyDetectable
        } else {
            LintClass::Mixed
        }
    }
}

/// The campaign's differential static-analysis summary: the clean
/// stream's diagnostic count (must be zero) and each fault kind's
/// [`LintClass`]. Rides the report as the `lint_cross_check`
/// annotation.
#[derive(Debug, Clone, Default)]
pub struct LintCrossCheck {
    /// Diagnostics the clean (unfaulted) stream raised — any nonzero
    /// value is a lint false positive.
    pub clean_diagnostics: u64,
    /// One entry per fault kind, in sweep order.
    pub kinds: Vec<LintKindCheck>,
}

impl LintCrossCheck {
    /// `true` when the clean stream linted clean and every kind is
    /// unambiguously static or dynamic-only — the property the
    /// strict gate and `tests/lint_matrix.rs` pin.
    pub fn is_consistent(&self) -> bool {
        self.clean_diagnostics == 0
            && self
                .kinds
                .iter()
                .all(|k| k.classification() != LintClass::Mixed)
    }

    /// The kinds the linter proves statically.
    pub fn static_kinds(&self) -> impl Iterator<Item = &LintKindCheck> {
        self.kinds
            .iter()
            .filter(|k| k.classification() == LintClass::StaticallyDetectable)
    }

    /// `true` when every swept kind's observed classification *and*
    /// fired rule set equal the pinned split
    /// ([`LintClass::expected_for`] / [`expected_lint_rules`]).
    /// Stronger than [`LintCrossCheck::is_consistent`]: a kind that
    /// silently drifted from `static` to `dynamic-only` (or started
    /// firing a different rule) is still self-consistent, but it is
    /// no longer the system the paper describes — the strict gate
    /// fails it instead of annotating it.
    pub fn matches_pinned_split(&self) -> bool {
        self.clean_diagnostics == 0
            && self.kinds.iter().all(|k| {
                let rules: Vec<&'static str> = expected_lint_rules(k.kind)
                    .iter()
                    .map(|r| r.name())
                    .collect();
                k.classification() == LintClass::expected_for(k.kind) && k.rules == rules
            })
    }

    /// A single-line JSON value for the report annotation.
    pub fn to_json_value(&self) -> String {
        let kinds = self
            .kinds
            .iter()
            .map(|k| {
                let rules = k
                    .rules
                    .iter()
                    .map(|r| format!("\"{r}\""))
                    .collect::<Vec<_>>()
                    .join(", ");
                format!(
                    "{{\"kind\": \"{}\", \"classification\": \"{}\", \
                     \"seeds\": {}, \"flagged\": {}, \"rules\": [{rules}]}}",
                    k.kind.name(),
                    k.classification(),
                    k.seeds,
                    k.flagged
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\"clean_diagnostics\": {}, \"consistent\": {}, \"kinds\": [{kinds}]}}",
            self.clean_diagnostics,
            self.is_consistent()
        )
    }
}

/// One policy's lint verdicts for one fault kind across the
/// campaign's seeds — the per-policy analogue of [`LintKindCheck`].
#[derive(Debug, Clone)]
pub struct PolicyKindCheck {
    /// The verifying policy.
    pub policy: Policy,
    /// The fault class.
    pub kind: FaultKind,
    /// Seeds whose plan succeeded and whose faulted stream was
    /// scanned.
    pub seeds: usize,
    /// Seeds whose faulted stream raised at least one diagnostic
    /// under this policy.
    pub flagged: usize,
    /// Union of the policy's rule names that fired, in taxonomy
    /// order.
    pub rules: Vec<&'static str>,
}

impl PolicyKindCheck {
    /// The kind's static-vs-dynamic classification under the policy.
    pub fn classification(&self) -> LintClass {
        if self.flagged == 0 {
            LintClass::DynamicOnly
        } else if self.flagged == self.seeds {
            LintClass::StaticallyDetectable
        } else {
            LintClass::Mixed
        }
    }
}

/// One policy's differential summary across the whole sweep: the
/// clean stream's verdict plus each fault kind's classification —
/// the `--policy` strict gate's evidence.
#[derive(Debug, Clone)]
pub struct PolicyCrossCheck {
    /// The verifying policy.
    pub policy: Policy,
    /// Diagnostics the policy raised on the clean stream — any
    /// nonzero value is a false positive of the model.
    pub clean_diagnostics: u64,
    /// One entry per fault kind, in sweep order.
    pub kinds: Vec<PolicyKindCheck>,
}

impl PolicyCrossCheck {
    /// `true` when the clean stream scanned clean and every kind is
    /// unambiguously static or dynamic-only under this policy.
    pub fn is_consistent(&self) -> bool {
        self.clean_diagnostics == 0
            && self
                .kinds
                .iter()
                .all(|k| k.classification() != LintClass::Mixed)
    }

    /// `true` when every swept kind's observed classification and
    /// fired rule set equal the policy's pinned table
    /// ([`expected_policy_class`] / [`expected_policy_rules`]).
    pub fn matches_pinned_split(&self) -> bool {
        self.clean_diagnostics == 0
            && self.kinds.iter().all(|k| {
                k.classification() == expected_policy_class(self.policy, k.kind)
                    && k.rules == expected_policy_rules(self.policy, k.kind)
            })
    }

    /// A single-line JSON value for the report annotation.
    pub fn to_json_value(&self) -> String {
        let kinds = self
            .kinds
            .iter()
            .map(|k| {
                let rules = k
                    .rules
                    .iter()
                    .map(|r| format!("\"{r}\""))
                    .collect::<Vec<_>>()
                    .join(", ");
                format!(
                    "{{\"kind\": \"{}\", \"classification\": \"{}\", \
                     \"seeds\": {}, \"flagged\": {}, \"rules\": [{rules}]}}",
                    k.kind.name(),
                    k.classification(),
                    k.seeds,
                    k.flagged
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\"policy\": \"{}\", \"clean_diagnostics\": {}, \"consistent\": {}, \
             \"pinned\": {}, \"kinds\": [{kinds}]}}",
            self.policy.name(),
            self.clean_diagnostics,
            self.is_consistent(),
            self.matches_pinned_split()
        )
    }
}

/// Runs the grid, fully streaming: each `(kind, seed)` fault is
/// planned **once** from one `O(window)` scan of the deterministic
/// trace stream, then every cell regenerates the stream lazily inside
/// its worker and replays it through the plan's splice adapter — no
/// trace is ever materialized, so campaign peak memory is
/// `threads × O(window)` instead of `cells × O(trace)`. The clean
/// stream is replayed once per system up front for the false-positive
/// reference.
pub fn run_fault_campaign(config: &FaultCampaignConfig) -> Result<FaultCampaignOutcome, AosError> {
    if config.kinds.is_empty() || config.seeds.is_empty() || config.systems.is_empty() {
        return Err(AosError::invalid_input(
            "fault campaign",
            "kinds, seeds and systems must all be non-empty",
        ));
    }
    let layout = PointerLayout::default();
    let stream = |profile: &WorkloadProfile, scale: f64| {
        TraceGenerator::new(profile, SafetyConfig::Aos, scale)
    };

    // Clean-reference violations per system (the false-positive gate).
    let mut clean_violations = Vec::with_capacity(config.systems.len());
    for &system in &config.systems {
        let sut = SystemUnderTest::scaled(system, config.scale);
        let stats = Machine::new(sut.machine_config()).run(stream(&config.profile, config.scale));
        clean_violations.push(stats.violations);
    }

    // One campaign cell per (kind, seed, system); the cell's label
    // carries the workload/system pair, the side tables the fault.
    // Plans are per (kind, seed) — shared by that pair's cells across
    // every system, so each fault is planned once, not once per cell.
    let mut cells = Vec::new();
    let mut specs = Vec::new();
    let mut plans: Vec<Result<FaultPlan, AosError>> = Vec::new();
    for &kind in &config.kinds {
        for &seed in &config.seeds {
            let spec = FaultSpec { kind, seed };
            plans.push(plan_fault_batched(
                stream(&config.profile, config.scale),
                layout,
                spec,
            ));
            for (si, &system) in config.systems.iter().enumerate() {
                cells.push(CampaignCell {
                    profile: config.profile,
                    sut: SystemUnderTest::scaled(system, config.scale)
                        .with_telemetry(config.telemetry),
                });
                specs.push((spec, si));
            }
        }
    }

    // The differential static cross-check: every configured policy
    // scans the same streams the machines will replay — the clean
    // stream once, then each planned fault's spliced stream — in one
    // shared-decode matrix pass per stream. The AOS policy is always
    // scanned (it backs the legacy `lint_cross_check`, bit-identical
    // to the pre-framework linter); extra policies ride the same
    // pass.
    let requested: Vec<Policy> = Policy::ALL
        .into_iter()
        .filter(|p| config.policies.contains(p))
        .collect();
    let scan_policies: Vec<Policy> = Policy::ALL
        .into_iter()
        .filter(|p| *p == Policy::Aos || requested.contains(p))
        .collect();
    let slot = |p: Policy| {
        scan_policies
            .iter()
            .position(|&q| q == p)
            .expect("policy was scanned")
    };
    let clean_reports = MatrixScan::run(
        &scan_policies,
        stream(&config.profile, config.scale),
        layout,
        &Telemetry::disabled(),
    );
    let mut lint = LintCrossCheck {
        clean_diagnostics: clean_reports[slot(Policy::Aos)].total_diagnostics(),
        kinds: Vec::new(),
    };
    let mut policy_checks: Vec<PolicyCrossCheck> = requested
        .iter()
        .map(|&p| PolicyCrossCheck {
            policy: p,
            clean_diagnostics: clean_reports[slot(p)].total_diagnostics(),
            kinds: Vec::new(),
        })
        .collect();
    for (ki, &kind) in config.kinds.iter().enumerate() {
        let mut check = LintKindCheck {
            kind,
            seeds: 0,
            flagged: 0,
            rules: Vec::new(),
        };
        let mut fired = [false; Rule::COUNT];
        let mut kind_checks: Vec<PolicyKindCheck> = requested
            .iter()
            .map(|&p| PolicyKindCheck {
                policy: p,
                kind,
                seeds: 0,
                flagged: 0,
                rules: Vec::new(),
            })
            .collect();
        let mut policy_fired: Vec<Vec<bool>> = requested
            .iter()
            .map(|&p| vec![false; p.rules().len()])
            .collect();
        for si in 0..config.seeds.len() {
            if let Ok(plan) = &plans[ki * config.seeds.len() + si] {
                let reports = MatrixScan::run(
                    &scan_policies,
                    plan.apply(stream(&config.profile, config.scale)),
                    layout,
                    &Telemetry::disabled(),
                );
                let aos = &reports[slot(Policy::Aos)];
                check.seeds += 1;
                if !aos.clean() {
                    check.flagged += 1;
                }
                for rule in aos.aos_rules_fired() {
                    fired[rule as usize] = true;
                }
                for (pi, &p) in requested.iter().enumerate() {
                    let report = &reports[slot(p)];
                    kind_checks[pi].seeds += 1;
                    if !report.clean() {
                        kind_checks[pi].flagged += 1;
                    }
                    for (ri, &count) in report.rule_counts.iter().enumerate() {
                        if count > 0 {
                            policy_fired[pi][ri] = true;
                        }
                    }
                }
            }
        }
        check.rules = Rule::ALL
            .iter()
            .filter(|r| fired[**r as usize])
            .map(|r| r.name())
            .collect();
        lint.kinds.push(check);
        for (pi, mut kind_check) in kind_checks.into_iter().enumerate() {
            kind_check.rules = kind_check
                .policy
                .rules()
                .iter()
                .enumerate()
                .filter(|(ri, _)| policy_fired[pi][*ri])
                .map(|(_, info)| info.name)
                .collect();
            policy_checks[pi].kinds.push(kind_check);
        }
    }

    // A failed plan is reported through its cells' Failed outcome
    // (via panic + catch_unwind) instead of aborting the sweep.
    let plans = Arc::new(plans);
    let systems_per_plan = config.systems.len();
    let runner = {
        let plans = Arc::clone(&plans);
        Arc::new(move |index: usize, cell: &CampaignCell| -> CellOutput {
            let plan = match &plans[index / systems_per_plan] {
                Ok(plan) => plan,
                Err(e) => panic!("{e}"),
            };
            let mut faulty = plan
                .apply(TraceGenerator::new(
                    &cell.profile,
                    SafetyConfig::Aos,
                    cell.sut.scale,
                ))
                .metered();
            let stats = Machine::new(cell.sut.machine_config()).run(&mut faulty);
            CellOutput {
                stats,
                trace_ops: faulty.ops(),
                peak_trace_bytes: faulty.peak_buffered_ops() as u64
                    * std::mem::size_of::<Op>() as u64,
            }
        })
    };

    let mut report = run_campaign_custom(&cells, &config.options, &|_| {}, runner);

    let mut matrix = TrialMatrix::default();
    for (index, result) in report.results.iter().enumerate() {
        let (spec, si) = specs[index];
        if let Some(stats) = result.stats() {
            matrix.push(FaultTrial {
                spec,
                system: config.systems[si],
                clean_violations: clean_violations[si],
                faulty_violations: stats.violations,
                description: plans[index / systems_per_plan]
                    .as_ref()
                    .map(|p| p.description.clone())
                    .unwrap_or_else(|_| "<no description recorded>".to_string()),
            });
        }
    }
    report.annotate("fault_detection", matrix.to_json_value());
    report.annotate("lint_cross_check", lint.to_json_value());
    let policy_json = policy_checks
        .iter()
        .map(PolicyCrossCheck::to_json_value)
        .collect::<Vec<_>>()
        .join(", ");
    report.annotate("policy_cross_check", format!("[{policy_json}]"));
    Ok(FaultCampaignOutcome {
        report,
        matrix,
        lint,
        policies: policy_checks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aos_workloads::profile::by_name;

    #[test]
    fn standard_sweep_is_sound_and_annotated() {
        let config = FaultCampaignConfig {
            options: CampaignOptions::with_threads(4),
            policies: Policy::ALL.to_vec(),
            ..FaultCampaignConfig::standard(*by_name("hmmer").unwrap(), 0.004, vec![1, 2])
        };
        let outcome = run_fault_campaign(&config).unwrap();
        assert_eq!(outcome.report.results.len(), 6 * 2 * 2);
        assert_eq!(outcome.report.failed(), 0);
        assert!(outcome.matrix.is_sound(), "{}", outcome.matrix.to_json_value());
        // Baseline must miss every fault: that asymmetry is the claim.
        assert!(outcome
            .matrix
            .unprotected()
            .all(|t| t.verdict() == crate::oracle::Verdict::Missed));
        // The static cross-check rides the report and must be
        // internally consistent: clean stream clean, every kind
        // unambiguously static or dynamic-only.
        assert!(outcome.lint.is_consistent(), "{}", outcome.lint.to_json_value());
        assert_eq!(outcome.lint.kinds.len(), 6);
        assert!(outcome.lint.static_kinds().count() >= 1);
        // Every configured policy's verdicts must land exactly on its
        // pinned per-kind table, and the AOS policy's check must agree
        // with the legacy lint cross-check (same scan, same linter).
        assert_eq!(outcome.policies.len(), Policy::ALL.len());
        for check in &outcome.policies {
            assert!(
                check.matches_pinned_split(),
                "{}",
                check.to_json_value()
            );
        }
        let aos_check = &outcome.policies[0];
        assert_eq!(aos_check.policy, Policy::Aos);
        assert_eq!(aos_check.clean_diagnostics, outcome.lint.clean_diagnostics);
        for (pk, lk) in aos_check.kinds.iter().zip(&outcome.lint.kinds) {
            assert_eq!(pk.flagged, lk.flagged);
            assert_eq!(pk.rules, lk.rules);
        }
        let json = outcome.report.to_json();
        assert!(json.contains("\"fault_detection\": {\"trials\": 24,"));
        assert!(json.contains("\"lint_cross_check\": {\"clean_diagnostics\": 0, \"consistent\": true,"));
        assert!(json.contains("\"policy_cross_check\": [{\"policy\": \"aos\","));
        assert!(json.contains("\"policy\": \"pactight\""));
        assert!(json.contains("\"schema\": \"aos-campaign-report/v5\""));
        // Every cell streamed: ops were metered and the pipeline never
        // held more than a window of trace (the clean trace here is
        // tens of thousands of ops).
        for r in &outcome.report.results {
            assert!(r.trace_ops() > 10_000, "{}", r.cell.label());
            let peak_ops = r.peak_trace_bytes() / std::mem::size_of::<Op>() as u64;
            assert!(peak_ops > 0 && peak_ops < 1024, "peak {peak_ops} ops");
        }
    }

    #[test]
    fn empty_grid_is_a_typed_error() {
        let mut config = FaultCampaignConfig::standard(*by_name("hmmer").unwrap(), 0.004, vec![]);
        config.options = CampaignOptions::with_threads(1);
        assert!(matches!(
            run_fault_campaign(&config),
            Err(AosError::InvalidInput { .. })
        ));
    }
}
