//! Deterministic fault injection for the AOS reproduction.
//!
//! The paper's security claim (§VII) is binary: a heap overflow,
//! underflow, use-after-free or double free — and any attempt to
//! forge the pointer metadata that encodes them — raises an AOS
//! exception, while an unprotected machine executes the same access
//! stream silently. This crate turns that claim into a measurable,
//! regression-testable artifact:
//!
//! - [`inject::plan_fault`] scans a
//!   [`TraceGenerator`](aos_workloads::TraceGenerator) stream once in
//!   `O(window)` memory and plans one seeded fault (see
//!   [`FaultKind`]); [`FaultPlan::apply`](inject::FaultPlan::apply)
//!   splices it into a fresh stream without materializing the trace;
//! - [`oracle`] replays clean and faulted streams through
//!   [`Machine`](aos_sim::Machine) configurations and classifies each
//!   trial as detected / missed / false positive;
//! - [`corrupt`] models physical bounds-record corruption (bit flips,
//!   lost ways) against the HBT's CRC-3 fail-closed design;
//! - [`corpus`] injects storage faults into persistent trace corpora
//!   (bit rot inside a stored op block, power-loss truncation
//!   mid-frame) and pins the quarantine-not-crash contract of
//!   [`aos_isa::corpus`];
//! - [`campaign`] fans a `kind × seed × system` grid through the
//!   hardened campaign runner and annotates the
//!   `aos-campaign-report/v5` document with detection rates.
//!
//! Every fault is a pure function of `(workload, kind, seed)` — two
//! runs of the same spec inject the identical op at the identical
//! trace position, so detection verdicts can be pinned in tests.

pub mod campaign;
pub mod corpus;
pub mod corrupt;
pub mod inject;
pub mod oracle;

pub use campaign::{
    expected_lint_rules, expected_policy_class, expected_policy_rules, run_fault_campaign,
    FaultCampaignConfig, FaultCampaignOutcome, LintClass, LintCrossCheck, LintKindCheck,
    PolicyCrossCheck, PolicyKindCheck,
};
pub use inject::{
    inject, plan_fault, plan_fault_batched, FaultAction, FaultKind, FaultPlan, FaultSpec,
    FaultStream, Injection,
    UAF_DELAY_OPS,
};
pub use oracle::{run_trial, FaultTrial, TrialMatrix, Verdict};
