//! Deterministic fault injection for the AOS reproduction.
//!
//! The paper's security claim (§VII) is binary: a heap overflow,
//! underflow, use-after-free or double free — and any attempt to
//! forge the pointer metadata that encodes them — raises an AOS
//! exception, while an unprotected machine executes the same access
//! stream silently. This crate turns that claim into a measurable,
//! regression-testable artifact:
//!
//! - [`inject`] transforms a [`TraceGenerator`](aos_workloads::TraceGenerator)
//!   trace by splicing in one seeded fault (see [`FaultKind`]);
//! - [`oracle`] replays clean and faulted traces through
//!   [`Machine`](aos_sim::Machine) configurations and classifies each
//!   trial as detected / missed / false positive;
//! - [`corrupt`] models physical bounds-record corruption (bit flips,
//!   lost ways) against the HBT's CRC-3 fail-closed design;
//! - [`campaign`] fans a `kind × seed × system` grid through the
//!   hardened campaign runner and annotates the
//!   `aos-campaign-report/v2` document with detection rates.
//!
//! Every fault is a pure function of `(workload, kind, seed)` — two
//! runs of the same spec inject the identical op at the identical
//! trace position, so detection verdicts can be pinned in tests.

pub mod campaign;
pub mod corrupt;
pub mod inject;
pub mod oracle;

pub use campaign::{run_fault_campaign, FaultCampaignConfig, FaultCampaignOutcome};
pub use inject::{inject, FaultKind, FaultSpec, Injection};
pub use oracle::{run_trial, FaultTrial, TrialMatrix, Verdict};
