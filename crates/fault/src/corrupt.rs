//! Physical corruption of bounds-table state: single- and multi-bit
//! flips in stored records, and "lost way" events where a whole way's
//! records vanish (a dropped line, a botched migration).
//!
//! The HBT's CRC-3 field makes corruption *fail closed*: a flipped
//! record no longer validates any access, so the corruption surfaces
//! as a detected bounds violation rather than a silently widened (or
//! narrowed) object. The one documented escape is a double flip whose
//! two bits fall in the same CRC residue class — see [`crc_class`] —
//! which the property tests in `crates/hbt` pin exactly.

use aos_hbt::{CompressedBounds, HashedBoundsTable, BOUNDS_PER_WAY};

/// Payload width of a compressed record; bits at and above this index
/// hold the CRC-3 field.
pub const PAYLOAD_BITS: u32 = 61;

/// The CRC-3 residue class of a bit position in the raw 64-bit
/// record: `x^p mod g` for payload bits, and the check-bit identity
/// for the CRC field itself (check bit `c` cancels payload
/// contributions of class `c`).
///
/// Two flipped bits cancel in the syndrome — the only way corruption
/// can go undetected — exactly when their classes match.
pub fn crc_class(bit: u32) -> u32 {
    assert!(bit < 64, "bit {bit} out of range");
    if bit < PAYLOAD_BITS {
        bit % 7
    } else {
        (bit - PAYLOAD_BITS) % 7
    }
}

/// Whether a double flip at `a` and `b` is the documented CRC-3
/// escape (undetectable by the integrity check alone).
pub fn double_flip_escapes(a: u32, b: u32) -> bool {
    a != b && crc_class(a) == crc_class(b)
}

/// Returns the record with one bit flipped.
pub fn flip_bit(record: CompressedBounds, bit: u32) -> CompressedBounds {
    assert!(bit < 64, "bit {bit} out of range");
    CompressedBounds::from_raw(record.to_raw() ^ (1u64 << bit))
}

/// Returns the record with every listed bit flipped.
pub fn flip_bits(record: CompressedBounds, bits: &[u32]) -> CompressedBounds {
    bits.iter().fold(record, |r, &b| flip_bit(r, b))
}

/// Flips one bit of the stored record at `(pac, way, slot)` in place.
pub fn tamper_slot(table: &mut HashedBoundsTable, pac: u64, way: u32, slot: u32, bit: u32) {
    let record = table.peek_way(pac, way)[slot as usize];
    table.poke_slot(pac, way, slot, flip_bit(record, bit));
}

/// Erases every record in one way of a row — the "lost way" fault
/// (e.g. a dropped dirty line during migration). Returns how many
/// live records were lost.
pub fn lose_way(table: &mut HashedBoundsTable, pac: u64, way: u32) -> u32 {
    let mut lost = 0;
    for slot in 0..BOUNDS_PER_WAY {
        let record = table.peek_way(pac, way)[slot as usize];
        if !record.is_empty() {
            lost += 1;
            table.poke_slot(pac, way, slot, CompressedBounds::EMPTY);
        }
    }
    lost
}

#[cfg(test)]
mod tests {
    use super::*;
    use aos_hbt::HbtConfig;

    #[test]
    fn single_bit_tamper_fails_closed_at_the_table() {
        let mut table = HashedBoundsTable::new(HbtConfig::default());
        let pac = 0x42;
        table
            .store(pac, CompressedBounds::encode(0x1000, 64))
            .unwrap();
        assert!(table.check(pac, 0x1000 + 8, 0).is_some());
        table.discard_accesses();
        for bit in 0..64 {
            tamper_slot(&mut table, pac, 0, 0, bit);
            assert!(
                table.check(pac, 0x1000 + 8, 0).is_none(),
                "bit {bit} flip must not validate the access"
            );
            table.discard_accesses();
            tamper_slot(&mut table, pac, 0, 0, bit); // restore
        }
    }

    #[test]
    fn lost_way_turns_valid_accesses_into_detected_misses() {
        let mut table = HashedBoundsTable::new(HbtConfig::default());
        let pac = 0x17;
        table
            .store(pac, CompressedBounds::encode(0x2000, 128))
            .unwrap();
        assert_eq!(lose_way(&mut table, pac, 0), 1);
        assert!(table.check(pac, 0x2000, 0).is_none());
        assert_eq!(table.row_occupancy(pac), 0);
    }

    #[test]
    fn escape_predicate_matches_residue_arithmetic() {
        // Pure-payload pairs escape iff their distance is 0 mod 7.
        assert!(double_flip_escapes(0, 7));
        assert!(double_flip_escapes(3, 59)); // 59 - 3 = 56 = 8*7
        assert!(!double_flip_escapes(0, 1));
        // CRC bit 61 has class 0, cancelling payload class-0 bits.
        assert!(double_flip_escapes(61, 0));
        assert!(double_flip_escapes(62, 1));
        assert!(double_flip_escapes(63, 2));
        assert!(!double_flip_escapes(61, 1));
        // A bit never escapes with itself (that is "no flip at all").
        assert!(!double_flip_escapes(5, 5));
    }
}
