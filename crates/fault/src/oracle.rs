//! The detection oracle: replays clean and faulted traces through a
//! system's machine model and classifies the outcome.
//!
//! A trial is **detected** when the faulted trace raises strictly
//! more violations than the clean trace on the same machine, and a
//! **false positive** when the clean trace raises any violation at
//! all. The paper's security table (§VII) then reduces to: every
//! spatial/temporal/forgery trial is detected under AOS and missed
//! under Baseline, with zero false positives anywhere.

use aos_core::experiment::SystemUnderTest;
use aos_isa::SafetyConfig;
use aos_ptrauth::PointerLayout;
use aos_sim::Machine;
use aos_util::AosError;
use aos_workloads::{TraceGenerator, WorkloadProfile};

use crate::inject::{plan_fault, FaultSpec};

/// The oracle's classification of one trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The machine raised a violation the clean run did not.
    Detected,
    /// The faulted trace executed without an extra violation.
    Missed,
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Verdict::Detected => "detected",
            Verdict::Missed => "missed",
        })
    }
}

/// One `(fault × system)` trial and its measured outcome.
#[derive(Debug, Clone)]
pub struct FaultTrial {
    /// The injected fault.
    pub spec: FaultSpec,
    /// The system the trace ran on.
    pub system: SafetyConfig,
    /// Violations the *clean* trace raised (any > 0 is a false
    /// positive).
    pub clean_violations: u64,
    /// Violations the faulted trace raised.
    pub faulty_violations: u64,
    /// Where/what was injected, for the report.
    pub description: String,
}

impl FaultTrial {
    /// Detected iff the fault added at least one violation.
    pub fn verdict(&self) -> Verdict {
        if self.faulty_violations > self.clean_violations {
            Verdict::Detected
        } else {
            Verdict::Missed
        }
    }

    /// True when the clean trace itself raised a violation.
    pub fn false_positive(&self) -> bool {
        self.clean_violations > 0
    }
}

/// Runs one fault trial: plans `spec` against the AOS-instrumented
/// trace for `profile`, then replays both the clean and the faulted
/// *stream* on the machine `sut` describes — three passes of the
/// deterministic generator, zero materialized traces.
///
/// The trace is always instrumented with [`SafetyConfig::Aos`] so
/// every fault class has an anchor; whether the *machine* acts on the
/// instrumentation is exactly what `sut.safety` varies — a Baseline
/// machine executes the identical faulty access stream with checking
/// disabled, which is the paper's "unprotected build" comparison.
pub fn run_trial(
    profile: &WorkloadProfile,
    sut: &SystemUnderTest,
    spec: FaultSpec,
) -> Result<FaultTrial, AosError> {
    let stream = || TraceGenerator::new(profile, SafetyConfig::Aos, sut.scale);
    let plan = plan_fault(stream(), PointerLayout::default(), spec)?;
    let clean = Machine::new(sut.machine_config()).run(stream());
    let faulty = Machine::new(sut.machine_config()).run(plan.apply(stream()));
    Ok(FaultTrial {
        spec,
        system: sut.safety,
        clean_violations: clean.violations,
        faulty_violations: faulty.violations,
        description: plan.description,
    })
}

/// An accumulated grid of trials with its summary arithmetic.
#[derive(Debug, Clone, Default)]
pub struct TrialMatrix {
    /// Every trial run, in execution order.
    pub trials: Vec<FaultTrial>,
}

impl TrialMatrix {
    /// Adds one trial.
    pub fn push(&mut self, trial: FaultTrial) {
        self.trials.push(trial);
    }

    /// Trials on systems where AOS checking is active.
    pub fn protected(&self) -> impl Iterator<Item = &FaultTrial> {
        self.trials.iter().filter(|t| t.system.uses_aos())
    }

    /// Trials on systems without AOS checking.
    pub fn unprotected(&self) -> impl Iterator<Item = &FaultTrial> {
        self.trials.iter().filter(|t| !t.system.uses_aos())
    }

    /// Detected fraction among protected trials (1.0 when there are
    /// none, so an empty matrix does not read as a regression).
    pub fn detection_rate(&self) -> f64 {
        let (mut detected, mut total) = (0usize, 0usize);
        for t in self.protected() {
            total += 1;
            detected += usize::from(t.verdict() == Verdict::Detected);
        }
        if total == 0 {
            1.0
        } else {
            detected as f64 / total as f64
        }
    }

    /// Count of clean-trace violations anywhere in the matrix.
    pub fn false_positives(&self) -> usize {
        self.trials.iter().filter(|t| t.false_positive()).count()
    }

    /// The acceptance gate: every protected trial detected, every
    /// clean trace silent.
    pub fn is_sound(&self) -> bool {
        self.detection_rate() == 1.0 && self.false_positives() == 0
    }

    /// JSON object summarizing the matrix, suitable for
    /// [`aos_core::experiment::campaign::CampaignReport::annotate`].
    pub fn to_json_value(&self) -> String {
        let protected_total = self.protected().count();
        let protected_detected = self
            .protected()
            .filter(|t| t.verdict() == Verdict::Detected)
            .count();
        let unprotected_total = self.unprotected().count();
        let unprotected_missed = self
            .unprotected()
            .filter(|t| t.verdict() == Verdict::Missed)
            .count();
        format!(
            "{{\"trials\": {}, \"aos_detected\": {}, \"aos_total\": {}, \
             \"baseline_missed\": {}, \"baseline_total\": {}, \
             \"detection_rate\": {:.4}, \"false_positives\": {}}}",
            self.trials.len(),
            protected_detected,
            protected_total,
            unprotected_missed,
            unprotected_total,
            self.detection_rate(),
            self.false_positives(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inject::FaultKind;
    use aos_workloads::profile::by_name;

    #[test]
    fn aos_detects_overflow_and_baseline_misses_it() {
        let p = by_name("hmmer").unwrap();
        let spec = FaultSpec {
            kind: FaultKind::OverflowWrite,
            seed: 3,
        };
        let aos = run_trial(p, &SystemUnderTest::scaled(SafetyConfig::Aos, 0.004), spec).unwrap();
        assert_eq!(aos.verdict(), Verdict::Detected);
        assert!(!aos.false_positive());
        let base = run_trial(
            p,
            &SystemUnderTest::scaled(SafetyConfig::Baseline, 0.004),
            spec,
        )
        .unwrap();
        assert_eq!(base.verdict(), Verdict::Missed);
        assert_eq!(base.faulty_violations, 0);
    }

    #[test]
    fn matrix_summary_arithmetic() {
        let p = by_name("hmmer").unwrap();
        let mut matrix = TrialMatrix::default();
        for system in [SafetyConfig::Aos, SafetyConfig::Baseline] {
            matrix.push(
                run_trial(
                    p,
                    &SystemUnderTest::scaled(system, 0.004),
                    FaultSpec {
                        kind: FaultKind::UseAfterFree,
                        seed: 1,
                    },
                )
                .unwrap(),
            );
        }
        assert!(matrix.is_sound());
        let json = matrix.to_json_value();
        assert!(json.contains("\"detection_rate\": 1.0000"));
        assert!(json.contains("\"false_positives\": 0"));
    }
}
