//! `aos-suite`: the umbrella package of the AOS reproduction.
//!
//! This crate exists to host the runnable examples (`examples/`) and
//! the cross-crate integration tests (`tests/`); it re-exports
//! [`aos_core`] — the crate downstream users should depend on — plus
//! each substrate crate under its short name.
//!
//! See `README.md` for the project overview, `DESIGN.md` for the
//! system inventory and `EXPERIMENTS.md` for paper-versus-measured
//! results.
//!
//! # Examples
//!
//! ```
//! use aos_suite::core::AosProcess;
//! let mut p = AosProcess::new();
//! let ptr = p.malloc(32)?;
//! assert!(p.load(ptr).is_ok());
//! # Ok::<(), aos_suite::heap::HeapError>(())
//! ```

pub use aos_core as core;
pub use aos_fault as fault;
pub use aos_heap as heap;
pub use aos_hbt as hbt;
pub use aos_isa as isa;
pub use aos_lint as lint;
pub use aos_mcu as mcu;
pub use aos_ptrauth as ptrauth;
pub use aos_qarma as qarma;
pub use aos_sim as sim;
pub use aos_util as util;
pub use aos_workloads as workloads;
