//! Batched-vs-per-op equivalence: the proof obligation of the batched
//! hot path. Every batch-granular shape — the in-thread [`Batched`]
//! driver, the double-buffered overlap runner, the batched fault
//! planner, the multi-lane QARMA kernel — must be *bit-identical* to
//! its per-op counterpart: same `RunStats` on all five systems, same
//! telemetry up to the two batch counters only the batched path can
//! increment, same fault plans and verdicts, same lint findings, same
//! cipher output.
//!
//! [`Batched`]: aos_isa::stream::Batched

use aos_core::experiment::overlap::{run_overlapped, run_overlapped_threaded};
use aos_core::experiment::{run_metered, SystemUnderTest};
use aos_core::sim::Machine;
use aos_fault::{plan_fault, plan_fault_batched, FaultKind, FaultSpec};
use aos_isa::stream::{Batched, DEFAULT_BATCH_OPS};
use aos_isa::{Op, SafetyConfig};
use aos_lint::lint_stream;
use aos_ptrauth::PointerLayout;
use aos_qarma::{PacKey, Qarma64};
use aos_util::Counter;
use aos_workloads::profile::by_name;
use aos_workloads::TraceGenerator;
use proptest::prelude::*;

const SCALE: f64 = 0.004;

/// The two counters that legitimately differ between shapes: the
/// per-op path never refills a batch, so they stay zero there.
const BATCH_COUNTERS: [Counter; 2] = [Counter::BatchOpsRefilled, Counter::BatchFallbackOps];

/// All five systems: per-op metered, in-thread batched (via the
/// adaptive runner on a single-core host it is exactly that shape),
/// and forced threaded overlap all produce bit-identical stats and
/// telemetry, and the batched paths prove they ran batch-native.
#[test]
fn batched_runs_are_bit_identical_across_all_five_systems() {
    let profile = by_name("hmmer").unwrap();
    for system in SafetyConfig::ALL {
        let sut = SystemUnderTest::scaled(system, SCALE).with_telemetry(true);
        let per_op = run_metered(profile, &sut);
        for (shape, batched) in [
            ("adaptive", run_overlapped(profile, &sut)),
            ("threaded", run_overlapped_threaded(profile, &sut)),
        ] {
            assert_eq!(batched.trace_ops, per_op.trace_ops, "{system}/{shape}");
            assert_eq!(
                batched.stats.without_telemetry(),
                per_op.stats.without_telemetry(),
                "{system}/{shape}: batching changed the simulation"
            );
            assert_eq!(
                batched.stats.telemetry.with_counters_zeroed(&BATCH_COUNTERS),
                per_op.stats.telemetry.with_counters_zeroed(&BATCH_COUNTERS),
                "{system}/{shape}: batching changed the telemetry"
            );
            assert_eq!(
                batched.stats.telemetry.counter(Counter::BatchOpsRefilled),
                batched.trace_ops,
                "{system}/{shape}: every op must arrive through a refill"
            );
            assert_eq!(
                batched.stats.telemetry.counter(Counter::BatchFallbackOps),
                0,
                "{system}/{shape}: the generator is batch-native"
            );
            assert_eq!(
                per_op.stats.telemetry.counter(Counter::BatchOpsRefilled),
                0,
                "the per-op reference must not have batched"
            );
        }
    }
}

/// The batched fault planner produces the same plan as the per-op
/// planner for every fault kind, and applying it yields the same
/// violations whether the faulted stream is simulated per op or
/// through the batched driver.
#[test]
fn fault_plans_and_verdicts_survive_batching() {
    let profile = by_name("hmmer").unwrap();
    let layout = PointerLayout::default();
    let stream = || TraceGenerator::new(profile, SafetyConfig::Aos, SCALE);
    for kind in FaultKind::ALL {
        for seed in [1u64, 7] {
            let spec = FaultSpec { kind, seed };
            let per_op = plan_fault(stream(), layout, spec).unwrap();
            let batched = plan_fault_batched(stream(), layout, spec).unwrap();
            assert_eq!(per_op, batched, "{kind} seed {seed}: plans diverged");

            for system in [SafetyConfig::Baseline, SafetyConfig::Aos] {
                let sut = SystemUnderTest::scaled(system, SCALE);
                let faulted: Vec<Op> = batched.apply(stream()).collect();
                let per_op_run =
                    Machine::new(sut.machine_config()).run(faulted.iter().copied());
                let batched_run = Machine::new(sut.machine_config())
                    .run_batched(batched.apply(stream()));
                assert_eq!(
                    per_op_run, batched_run,
                    "{kind} seed {seed} on {system}: verdicts diverged"
                );
            }
        }
    }
}

/// Lint findings are identical whether the linted stream arrives per
/// op or through the batched driver.
#[test]
fn lint_findings_survive_batching() {
    let layout = PointerLayout::default();
    for name in ["hmmer", "mcf"] {
        let profile = by_name(name).unwrap();
        let stream = || TraceGenerator::new(profile, SafetyConfig::Aos, SCALE);
        let per_op = lint_stream(stream(), layout);
        let batched = lint_stream(Batched::new(stream(), DEFAULT_BATCH_OPS), layout);
        assert_eq!(per_op, batched, "{name}: lint findings diverged");
    }
}

/// A faulted stream linted through the batched driver raises the same
/// findings as the per-op path — batch boundaries never mask a
/// spliced-in protocol violation.
#[test]
fn faulted_lint_findings_survive_batching() {
    let profile = by_name("hmmer").unwrap();
    let layout = PointerLayout::default();
    let stream = || TraceGenerator::new(profile, SafetyConfig::Aos, SCALE);
    let spec = FaultSpec {
        kind: FaultKind::UseAfterFree,
        seed: 3,
    };
    let plan = plan_fault_batched(stream(), layout, spec).unwrap();
    let per_op = lint_stream(plan.apply(stream()), layout);
    let batched = lint_stream(Batched::new(plan.apply(stream()), DEFAULT_BATCH_OPS), layout);
    assert_eq!(per_op, batched);
    assert!(
        per_op.total_diagnostics() > 0,
        "a UAF splice must lint dirty for the comparison to bite"
    );
}

proptest! {
    /// The multi-lane cipher kernel matches the scalar path for any
    /// data/modifier mix — uniform modifiers (the batched fast path),
    /// mixed modifiers (the fallback), and every partial-lane tail.
    #[test]
    fn compute_batch_matches_compute(
        key in (any::<u64>(), any::<u64>()),
        data in proptest::collection::vec(any::<u64>(), 0..40),
        uniform in any::<bool>(),
        modifier_seed in any::<u64>(),
    ) {
        let q = Qarma64::new(PacKey::new(key.0, key.1));
        let modifiers: Vec<u64> = (0..data.len() as u64)
            .map(|i| if uniform { modifier_seed } else { modifier_seed.wrapping_add(i * 0x9e37) })
            .collect();
        let mut out = vec![0u64; data.len()];
        q.compute_batch(&data, &modifiers, &mut out);
        for i in 0..data.len() {
            prop_assert_eq!(out[i], q.compute(data[i], modifiers[i]));
        }
    }
}
