//! Reproducibility guarantees: the whole pipeline — cipher, workload
//! synthesis, machine — is a pure function of its inputs.

use aos_core::experiment::{run, SystemUnderTest};
use aos_core::isa::SafetyConfig;
use aos_core::qarma::{PacKey, Qarma64};
use aos_core::workloads::microbench::pac_distribution;
use aos_core::workloads::profile::by_name;
use aos_core::workloads::schedule::run_full_schedule;
use aos_core::workloads::TraceGenerator;

#[test]
fn qarma_pins_the_arm_reference_vector() {
    // If this ever changes, every PAC in the repository changes.
    let q = Qarma64::new(PacKey::new(0x84be85ce9804e94b, 0xec2802d4e0a488e9));
    assert_eq!(q.compute(0xfb623599da6e8127, 0x477d469dec0b8762), 0xc003b93999b33765);
}

#[test]
fn traces_are_bit_identical_across_generators() {
    let p = by_name("povray").unwrap();
    for config in SafetyConfig::ALL {
        let a: Vec<_> = TraceGenerator::new(p, config, 0.005).collect();
        let b: Vec<_> = TraceGenerator::new(p, config, 0.005).collect();
        assert_eq!(a, b, "{config}");
    }
}

#[test]
fn machine_results_are_bit_identical_across_runs() {
    let p = by_name("gobmk").unwrap();
    let sut = SystemUnderTest::scaled(SafetyConfig::PaAos, 0.01);
    let a = run(p, &sut);
    let b = run(p, &sut);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.retired_ops, b.retired_ops);
    assert_eq!(a.traffic, b.traffic);
    assert_eq!(a.mcu, b.mcu);
    assert_eq!(a.l1d, b.l1d);
}

#[test]
fn microbench_histogram_is_stable() {
    let a = pac_distribution(20_000, 16);
    let b = pac_distribution(20_000, 16);
    assert_eq!(a, b);
}

#[test]
fn allocation_schedules_are_stable() {
    let p = by_name("gobmk").unwrap();
    let a = run_full_schedule(p, 1.0);
    let b = run_full_schedule(p, 1.0);
    assert_eq!(a, b);
}

#[test]
fn different_workloads_produce_different_traces() {
    let a: Vec<_> = TraceGenerator::new(by_name("mcf").unwrap(), SafetyConfig::Aos, 0.005).collect();
    let b: Vec<_> = TraceGenerator::new(by_name("lbm").unwrap(), SafetyConfig::Aos, 0.005).collect();
    assert_ne!(a, b);
}
