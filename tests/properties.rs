//! Property-based tests over the core data structures and invariants.
//!
//! Scripted sequences are drawn from the shared
//! `aos_isa::strategy` generators: [`action_script`] for abstract
//! `(kind, a, b)` scripts and [`lifecycle_stream`] for complete
//! well-formed Fig. 7 op streams.

use proptest::prelude::*;

use aos_core::experiment::SystemUnderTest;
use aos_core::hbt::{CompressedBounds, HashedBoundsTable, HbtConfig};
use aos_core::ptrauth::{bwb_tag, compute_ahc, Ahc, PointerLayout};
use aos_core::qarma::{truncate_pac, PacKey, Qarma64};
use aos_core::AosProcess;
use aos_isa::strategy::{action_script, lifecycle_stream, LifecycleConfig};
use aos_isa::SafetyConfig;
use aos_lint::lint_stream;
use aos_sim::Machine;

proptest! {
    /// QARMA is a permutation: invert ∘ compute = identity for any
    /// data, modifier and key.
    #[test]
    fn qarma_is_invertible(data: u64, modifier: u64, hi: u64, lo: u64) {
        let q = Qarma64::new(PacKey::new(hi, lo));
        prop_assert_eq!(q.invert(q.compute(data, modifier), modifier), data);
    }

    /// Truncated PACs always fit their field.
    #[test]
    fn pac_truncation_fits(value: u64, bits in 1u32..=32) {
        prop_assert!(truncate_pac(value, bits) < (1u64 << bits));
    }

    /// Pointer compose/extract round-trips for any field values in
    /// range.
    #[test]
    fn layout_roundtrips(
        addr in 0u64..(1 << 46),
        pac in 0u64..(1 << 16),
        ahc in 0u8..4,
    ) {
        let layout = PointerLayout::default();
        let p = layout.compose(addr, pac, ahc);
        prop_assert_eq!(layout.address(p), addr);
        prop_assert_eq!(layout.pac(p), pac);
        prop_assert_eq!(layout.ahc(p), ahc);
        prop_assert_eq!(layout.is_signed(p), ahc != 0);
        prop_assert_eq!(layout.strip(p), addr);
    }

    /// Bounds compression: every in-bounds address passes, the
    /// boundary addresses behave half-open, and nearby out-of-bounds
    /// addresses fail (within the 33-bit domain).
    #[test]
    fn compressed_bounds_are_exact_nearby(
        base16 in 1u64..(1 << 28),
        size in 1u64..=(u32::MAX as u64),
        probe in 0u64..(1 << 20),
    ) {
        let base = base16 * 16;
        let b = CompressedBounds::encode(base, size);
        // In-bounds probe.
        let inside = base + probe % size;
        prop_assert!(b.check(inside));
        // Half-open upper end.
        prop_assert!(b.check(base));
        prop_assert!(b.check(base + size - 1));
        if base + size < (1 << 33) {
            prop_assert!(!b.check(base + size));
        }
        if base > 0 {
            prop_assert!(!b.check(base - 1));
        }
    }

    /// The AHC classifies by the highest differing bit: growing an
    /// object never shrinks its class.
    #[test]
    fn ahc_is_monotonic_in_size(addr16 in 0u64..(1 << 30), size in 1u64..(1 << 20)) {
        let addr = addr16 * 16;
        let small = compute_ahc(addr, size, 46);
        let large = compute_ahc(addr, size * 2, 46);
        prop_assert!(large >= small);
    }

    /// BWB tags are invariant across the addresses inside one object
    /// (the property Algorithm 2 exists to provide).
    #[test]
    fn bwb_tags_invariant_within_object(
        addr16 in 1u64..(1 << 30),
        size in 1u64..(1 << 16),
        o1 in 0u64..(1 << 16),
        o2 in 0u64..(1 << 16),
        pac in 0u64..(1 << 16),
    ) {
        let addr = addr16 * 16;
        let ahc = compute_ahc(addr, size, 46);
        if ahc != Ahc::Large {
            let off1 = o1 % size;
            let off2 = o2 % size;
            prop_assert_eq!(
                bwb_tag(addr + off1, ahc, pac),
                bwb_tag(addr + off2, ahc, pac)
            );
        }
    }

    /// HBT store → check → clear → check behaves like a map keyed by
    /// (pac, base), under arbitrary interleavings of distinct chunks.
    #[test]
    fn hbt_behaves_like_a_bounds_map(
        script in action_script(0u8..1, 0u64..2048, 1u64..64, 1..24),
    ) {
        let chunks: Vec<(u64, u64)> = script
            .into_iter()
            .map(|(_, pac, granules)| (pac, granules))
            .collect();
        let mut hbt = HashedBoundsTable::new(HbtConfig {
            pac_size: 11,
            initial_ways: 4,
            max_ways: 64,
            base_addr: 0x1000_0000,
            compressed: true,
        });
        // Deduplicate bases so entries are distinct.
        let mut seen = std::collections::HashSet::new();
        let chunks: Vec<(u64, u64, u64)> = chunks
            .into_iter()
            .enumerate()
            .map(|(i, (pac, granules))| (pac, 0x10_0000 + (i as u64) * (1 << 20), granules * 16))
            .filter(|(_, base, _)| seen.insert(*base))
            .collect();
        for &(pac, base, size) in &chunks {
            hbt.store(pac, CompressedBounds::encode(base, size)).unwrap();
        }
        for &(pac, base, size) in &chunks {
            prop_assert!(hbt.check(pac, base + size / 2, 0).is_some());
        }
        for &(pac, base, _) in &chunks {
            hbt.clear(pac, base).unwrap();
        }
        for &(pac, base, _) in &chunks {
            prop_assert!(hbt.check(pac, base, 0).is_none());
        }
    }

    /// Whole-machine invariant: any interleaving of malloc/free/access
    /// over valid handles never reports a violation, and every invalid
    /// operation is caught.
    #[test]
    fn process_never_false_positives_on_valid_programs(
        script in action_script(0u8..4, 0u64..64, 1u64..512, 1..200),
    ) {
        let mut p = AosProcess::new();
        let mut live: Vec<(u64, u64)> = Vec::new(); // (ptr, usable size)
        for (op, pick, size) in script {
            match op {
                0 => {
                    let ptr = p.malloc(size).unwrap();
                    // Bin reuse may hand out a chunk larger than the
                    // request; bounds cover the usable size.
                    let usable = p
                        .heap()
                        .chunk_at(p.layout().address(ptr))
                        .expect("fresh chunk exists")
                        .usable_size();
                    live.push((ptr, usable));
                }
                1 if !live.is_empty() => {
                    let (ptr, size) = live[(pick as usize) % live.len()];
                    let off = (pick * 7) % size / 8 * 8;
                    prop_assert!(p.load(ptr + off).is_ok(), "valid load flagged");
                }
                2 if !live.is_empty() => {
                    let (ptr, size) = live[(pick as usize) % live.len()];
                    let off = (pick * 13) % size / 8 * 8;
                    prop_assert!(p.store(ptr + off, pick).is_ok(), "valid store flagged");
                }
                3 if !live.is_empty() => {
                    let (ptr, _) = live.swap_remove((pick as usize) % live.len());
                    prop_assert!(p.free(ptr).is_ok(), "valid free flagged");
                }
                _ => {}
            }
        }
        // And now every access one past the usable size fails.
        for (ptr, usable) in live {
            prop_assert!(p.load(ptr + usable).is_err(), "OOB missed");
        }
    }

    /// The false-positive gate over *generated* programs: every
    /// well-formed Fig. 7 lifecycle stream — including the dangling
    /// re-sign tail — is lint-clean and runs violation-free on the
    /// full AOS machine. Before `lifecycle_stream` this property was
    /// only checkable against the trace generator's fixed workloads.
    #[test]
    fn lifecycle_streams_lint_clean_and_run_violation_free(
        ops in lifecycle_stream(LifecycleConfig {
            resign_dangling: true,
            ..LifecycleConfig::default()
        }),
    ) {
        let report = lint_stream(ops.iter().copied(), PointerLayout::default());
        prop_assert_eq!(
            report.total_diagnostics(),
            0,
            "well-formed stream flagged: {}",
            report.to_table()
        );
        for system in [SafetyConfig::Aos, SafetyConfig::PaAos] {
            let sut = SystemUnderTest::scaled(system, 0.004);
            let stats = Machine::new(sut.machine_config()).run(ops.iter().copied());
            prop_assert_eq!(stats.violations, 0, "violation on clean stream");
        }
    }
}
