//! Differential testing: run random programs against both the AOS
//! machine and a *perfect* bounds oracle, and require that every
//! disagreement is one of the paper's documented aliasing cases.
//!
//! The oracle tracks exact live ranges. AOS may additionally accept an
//! access the oracle rejects only when:
//!
//! 1. **PAC collision** (§VII-E): some live chunk with the same PAC
//!    has compressed bounds covering the address; or
//! 2. **base reuse** (§IV-C): the chunk at the pointer's base was
//!    freed and the base reallocated, recreating the same PAC.
//!
//! AOS must never *reject* an access the oracle accepts (no false
//! positives on valid programs), and must never accept anything the
//! oracle rejects without a documented explanation.

use proptest::prelude::*;

use aos_core::hbt::CompressedBounds;
use aos_core::ptrauth::PointerLayout;
use aos_core::AosProcess;

/// Exact ground truth about live allocations.
#[derive(Default)]
struct Oracle {
    /// base -> usable size, for live chunks.
    live: std::collections::HashMap<u64, u64>,
}

impl Oracle {
    fn on_malloc(&mut self, base: u64, usable: u64) {
        self.live.insert(base, usable);
    }

    fn on_free(&mut self, base: u64) {
        self.live.remove(&base);
    }

    /// Is `addr` within the chunk based at `base`?
    fn in_bounds_of(&self, base: u64, addr: u64) -> bool {
        self.live
            .get(&base)
            .is_some_and(|&size| (base..base + size).contains(&addr))
    }

    /// Documented aliasing: is there *any* live chunk whose PAC equals
    /// `pac` and whose compressed bounds cover `addr`?
    fn aliasing_explains(&self, p: &AosProcess, pac: u64, addr: u64) -> bool {
        self.live.iter().any(|(&base, &size)| {
            let chunk_pac = p.signer().pac_for(base, ctx());
            chunk_pac == pac && CompressedBounds::encode(base, size).check(addr)
        })
    }
}

fn ctx() -> u64 {
    aos_core::workloads::generator::SIGNING_CONTEXT
}

#[derive(Debug, Clone)]
enum Action {
    Malloc(u64),
    FreeLive(usize),
    ProbeLive { pick: usize, offset: i64 },
    ProbeDangling { pick: usize, offset: u64 },
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        (1u64..2048).prop_map(Action::Malloc),
        (0usize..64).prop_map(Action::FreeLive),
        ((0usize..64), (-64i64..2048)).prop_map(|(pick, offset)| Action::ProbeLive {
            pick,
            offset
        }),
        ((0usize..64), (0u64..256)).prop_map(|(pick, offset)| Action::ProbeDangling {
            pick,
            offset
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn aos_verdicts_match_a_perfect_oracle(
        script in proptest::collection::vec(action_strategy(), 1..150),
    ) {
        let layout = PointerLayout::default();
        let mut p = AosProcess::new();
        let mut oracle = Oracle::default();
        let mut live: Vec<u64> = Vec::new(); // signed pointers
        let mut dangling: Vec<u64> = Vec::new();

        for action in script {
            match action {
                Action::Malloc(size) => {
                    let ptr = p.malloc(size).unwrap();
                    let base = layout.address(ptr);
                    let usable = p.heap().chunk_at(base).unwrap().usable_size();
                    oracle.on_malloc(base, usable);
                    live.push(ptr);
                }
                Action::FreeLive(pick) => {
                    if live.is_empty() { continue; }
                    let ptr = live.swap_remove(pick % live.len());
                    p.free(ptr).unwrap();
                    oracle.on_free(layout.address(ptr));
                    dangling.push(ptr);
                }
                Action::ProbeLive { pick, offset } => {
                    if live.is_empty() { continue; }
                    let ptr = live[pick % live.len()];
                    let base = layout.address(ptr);
                    let addr = base.wrapping_add_signed(offset);
                    if addr >= base.wrapping_add_signed(offset) && offset < 0 && base < 64 {
                        continue; // avoid wrapping below the heap
                    }
                    let probe = layout.compose(addr, layout.pac(ptr), 1);
                    check_agreement(&mut p, &oracle, &layout, probe, base)?;
                }
                Action::ProbeDangling { pick, offset } => {
                    if dangling.is_empty() { continue; }
                    let ptr = dangling[pick % dangling.len()];
                    let base = layout.address(ptr);
                    let addr = base + offset;
                    let probe = layout.compose(addr, layout.pac(ptr), 1);
                    check_agreement(&mut p, &oracle, &layout, probe, base)?;
                }
            }
        }

        fn check_agreement(
            p: &mut AosProcess,
            oracle: &Oracle,
            layout: &PointerLayout,
            probe: u64,
            base: u64,
        ) -> Result<(), TestCaseError> {
            let addr = layout.address(probe);
            let aos_ok = p.load(probe).is_ok();
            let oracle_ok = oracle.in_bounds_of(base, addr);
            if aos_ok == oracle_ok {
                return Ok(());
            }
            if aos_ok && !oracle_ok {
                // Must be explained by documented aliasing.
                prop_assert!(
                    oracle.aliasing_explains(p, layout.pac(probe), addr),
                    "AOS accepted {addr:#x} (base {base:#x}) without a \
                     documented aliasing explanation"
                );
                return Ok(());
            }
            // AOS rejected something the oracle allows: a false
            // positive — never acceptable.
            prop_assert!(
                false,
                "false positive: oracle allows {addr:#x} in chunk {base:#x}, AOS rejected"
            );
            Ok(())
        }
    }
}

#[test]
fn oracle_agreement_on_a_fixed_torture_script() {
    // A deterministic long-run variant for CI stability: heavy churn
    // with interleaved probes at every boundary.
    let layout = PointerLayout::default();
    let mut p = AosProcess::new();
    let mut live: Vec<(u64, u64)> = Vec::new();
    for round in 0u64..400 {
        let size = (round % 13 + 1) * 24;
        let ptr = p.malloc(size).unwrap();
        let usable = p
            .heap()
            .chunk_at(layout.address(ptr))
            .unwrap()
            .usable_size();
        live.push((ptr, usable));
        // Probe both boundaries of everything live.
        for &(q, u) in live.iter().rev().take(4) {
            assert!(p.load(q).is_ok());
            assert!(p.load(q + u - 8).is_ok());
            assert!(p.load(q + u).is_err());
        }
        if round % 3 == 0 && live.len() > 2 {
            let (victim, _) = live.remove((round as usize * 5) % live.len());
            p.free(victim).unwrap();
            assert!(p.load(victim).is_err(), "dangling probe after free");
        }
    }
}
