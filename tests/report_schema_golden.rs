//! Golden-file pin of the `aos-campaign-report/v5` JSON schema.
//!
//! The report is hand-rolled JSON consumed by scripts, so its shape —
//! field names, their order, and the per-cell telemetry counter keys —
//! is an interface. This test extracts the ordered key sequence from a
//! one-cell campaign report and compares it against the checked-in
//! golden file. An intentional schema change means bumping the schema
//! version string and regenerating with:
//!
//! ```text
//! AOS_UPDATE_GOLDEN=1 cargo test --test report_schema_golden
//! ```

use aos_core::experiment::campaign::{matrix, run_campaign, CampaignOptions};
use aos_core::experiment::SystemUnderTest;
use aos_isa::SafetyConfig;
use aos_workloads::profile::by_name;

const GOLDEN: &str = "tests/golden/campaign_report_v5.keys";

/// Every JSON object key in document order: a quoted token directly
/// followed by a colon. Values are never followed by `:` in this
/// report, so the scan is exact.
fn ordered_keys(json: &str) -> Vec<String> {
    let bytes = json.as_bytes();
    let mut keys = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'"' {
            i += 1;
            continue;
        }
        let start = i + 1;
        let mut j = start;
        while j < bytes.len() && bytes[j] != b'"' {
            if bytes[j] == b'\\' {
                j += 1;
            }
            j += 1;
        }
        let mut k = j + 1;
        while k < bytes.len() && bytes[k] == b' ' {
            k += 1;
        }
        if k < bytes.len() && bytes[k] == b':' {
            keys.push(json[start..j].to_string());
        }
        i = j + 1;
    }
    keys
}

fn one_cell_report(telemetry: bool) -> String {
    let cells = matrix(
        [*by_name("hmmer").unwrap()],
        [SystemUnderTest::scaled(SafetyConfig::Aos, 0.004).with_telemetry(telemetry)],
    );
    let report = run_campaign(&cells, &CampaignOptions::with_threads(1));
    assert_eq!(report.failed(), 0, "the golden cell must complete");
    report.to_json()
}

#[test]
fn campaign_report_v5_key_sequence_matches_golden() {
    let json = one_cell_report(true);
    assert!(
        json.contains("\"schema\": \"aos-campaign-report/v5\""),
        "schema version string drifted"
    );
    let keys = ordered_keys(&json).join("\n") + "\n";

    if std::env::var_os("AOS_UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN, &keys).expect("write golden");
    }
    let golden = std::fs::read_to_string(GOLDEN)
        .expect("golden file missing; regenerate with AOS_UPDATE_GOLDEN=1");
    assert_eq!(
        keys, golden,
        "the v5 report's key names/order changed; if intentional, bump the \
         schema version and rerun with AOS_UPDATE_GOLDEN=1"
    );
}

/// The schema is stable whether or not the cell recorded telemetry:
/// a disabled cell emits the same keys with zero values, so consumers
/// never need to branch on the flag.
#[test]
fn v5_key_sequence_does_not_depend_on_the_telemetry_flag() {
    let enabled = ordered_keys(&one_cell_report(true));
    let disabled = ordered_keys(&one_cell_report(false));
    assert_eq!(enabled, disabled);
}
