//! The coverage-guided fuzzing contract: campaign coverage maps are
//! a pure function of the seed, merging them is a monotone union,
//! and guided scheduling provably beats uniform sampling at covering
//! the attack-kind frontier under the same budget.

use aos_fuzz::{run_fuzz, CoverageMap, FuzzConfig, StepKind};
use aos_util::{Counter, Telemetry};

const WORKLOAD: &str = "hmmer";
const SCALE: f64 = 0.004;

fn config(seed: u64, guided: bool, budget: usize) -> FuzzConfig {
    FuzzConfig {
        workload: WORKLOAD.to_string(),
        scale: SCALE,
        seed,
        budget,
        max_chain: 3,
        coverage_guided: guided,
        ..FuzzConfig::default()
    }
}

/// The kinds a report's coverage map saw at least one step of.
fn covered_kinds(coverage: &CoverageMap) -> Vec<StepKind> {
    StepKind::all()
        .filter(|k| coverage.covers(&format!("step:{}", k.name())))
        .collect()
}

/// Same seed, same budget, guided on: two runs produce the identical
/// report — digest, JSON and coverage fingerprint — while a different
/// seed steers to a different campaign.
#[test]
fn guided_campaigns_are_seed_deterministic() {
    let telemetry = Telemetry::disabled();
    let a = run_fuzz(&config(5, true, 6), &telemetry).expect("fuzz");
    let b = run_fuzz(&config(5, true, 6), &telemetry).expect("fuzz");
    assert_eq!(a.digest(), b.digest());
    assert_eq!(a.coverage.fingerprint(), b.coverage.fingerprint());
    assert_eq!(a.to_json(), b.to_json());
    let other = run_fuzz(&config(6, true, 6), &telemetry).expect("fuzz");
    assert_ne!(a.digest(), other.digest(), "seed must steer the campaign");
}

/// Coverage is observed (and ledgered) whether or not it steers: a
/// uniform run still reports a non-empty map, its JSON carries the
/// coverage block, and the `fuzz_coverage_points` counter equals the
/// map size on a single-campaign telemetry ledger.
#[test]
fn uniform_runs_observe_coverage_without_being_steered_by_it() {
    let telemetry = Telemetry::enabled();
    let report = run_fuzz(&config(5, false, 6), &telemetry).expect("fuzz");
    assert!(!report.coverage_guided);
    assert!(!report.coverage.is_empty());
    assert_eq!(
        telemetry.snapshot().counter(Counter::FuzzCoveragePoints),
        report.coverage.len() as u64
    );
    let json = report.to_json();
    assert!(json.contains("\"coverage\""));
    assert!(json.contains("\"guided\": false"));
}

/// Merging is a monotone union: absorbing a second campaign's map
/// never shrinks coverage, is idempotent, and the merged fingerprint
/// depends only on the point set — not on merge order.
#[test]
fn coverage_merge_is_a_monotone_order_free_union() {
    let telemetry = Telemetry::disabled();
    let a = run_fuzz(&config(1, true, 4), &telemetry).expect("fuzz");
    let b = run_fuzz(&config(2, true, 4), &telemetry).expect("fuzz");

    let mut ab = a.coverage.clone();
    let fresh = ab.merge(&b.coverage);
    assert!(ab.len() >= a.coverage.len().max(b.coverage.len()));
    assert_eq!(ab.len(), a.coverage.len() + fresh);

    let mut ba = b.coverage.clone();
    ba.merge(&a.coverage);
    assert_eq!(ab.fingerprint(), ba.fingerprint(), "union is order-free");

    let mut again = ab.clone();
    assert_eq!(again.merge(&a.coverage), 0, "idempotent re-merge");
    assert_eq!(again.fingerprint(), ab.fingerprint());
}

/// The scheduler pin: under the same seed and an 11-scenario budget,
/// the guided frontier walks every one of the eleven attack kinds,
/// while uniform sampling (coupon-collecting the same kind space)
/// leaves kinds unvisited. This is the measurable payoff the guided
/// mode exists for.
#[test]
fn guided_scheduling_covers_the_kind_frontier_where_uniform_does_not() {
    let telemetry = Telemetry::disabled();
    let budget = StepKind::all().count();
    let guided = run_fuzz(&config(5, true, budget), &telemetry).expect("fuzz");
    let uniform = run_fuzz(&config(5, false, budget), &telemetry).expect("fuzz");

    let guided_kinds = covered_kinds(&guided.coverage);
    let uniform_kinds = covered_kinds(&uniform.coverage);
    assert_eq!(
        guided_kinds.len(),
        budget,
        "the frontier pass must touch every kind within the first {budget} scenarios"
    );
    assert!(
        uniform_kinds.len() < budget,
        "uniform sampling covered all {budget} kinds at this seed — pick another seed \
         so the guided-beats-uniform pin stays meaningful"
    );
    assert!(
        guided.coverage.len() > uniform.coverage.len(),
        "guided ({} points) must out-cover uniform ({} points) at the same budget",
        guided.coverage.len(),
        uniform.coverage.len()
    );
}
