//! Integration tests: the paper's §VII security analysis, end to end
//! through the public API.

use aos_core::security::{
    ahc_forging, all_scenarios, double_free, house_of_spirit, intra_object_overflow,
    non_adjacent_oob, oob_read, oob_write, pac_forging, use_after_free,
};
use aos_core::{AosProcess, MemorySafetyError};

#[test]
fn every_attack_class_has_the_paper_verdict() {
    // Spatial.
    assert!(oob_read().is_detected());
    assert!(oob_write().is_detected());
    assert!(non_adjacent_oob().is_detected(), "the case redzones miss");
    // Temporal.
    assert!(use_after_free().is_detected());
    assert!(double_free().is_detected());
    // Allocator abuse.
    assert!(house_of_spirit().is_detected());
    // Metadata forging.
    assert!(ahc_forging().is_detected());
    // The honest negative: intra-object overruns are future work.
    assert!(!intra_object_overflow().is_detected());
}

#[test]
fn pac_forging_success_rate_matches_entropy_argument() {
    // §VII-E: with a 16-bit PAC the attacker needs ~45K attempts for a
    // 50% chance against a single target. With ~65 live chunks and
    // 2048 tries we expect about two lucky collisions; anything beyond
    // a handful would mean the embedded PAC carries less entropy than
    // claimed.
    let attempts = 2048;
    let (successes, outcome) = pac_forging(attempts);
    assert!(outcome.is_detected());
    assert!(
        successes <= 12,
        "{successes}/{attempts} forged pointers passed bounds checking"
    );
}

#[test]
fn fig12_walkthrough_line_by_line() {
    // The exact sequence of paper Fig. 12.
    let mut p = AosProcess::new();
    let n = 10u64; // # elements
    let elem = 8u64;
    let ptr = p.malloc(n * elem).unwrap(); // lines 2-4: malloc, pacma, bndstr

    // Lines 6-7: OOB access via ptr[N+1].
    assert!(matches!(
        p.load(ptr + (n + 1) * elem),
        Err(MemorySafetyError::OutOfBounds { .. })
    ));
    assert!(matches!(
        p.store(ptr + (n + 1) * elem, 0),
        Err(MemorySafetyError::OutOfBounds { .. })
    ));

    // Lines 9-12: valid free (bndclr, xpacm, free, re-sign).
    p.free(ptr).unwrap();

    // Line 14: dangling-pointer use cannot find valid bounds.
    assert!(matches!(
        p.load(ptr),
        Err(MemorySafetyError::UseAfterFree { .. })
    ));

    // Lines 16-19: double free cannot find bounds to clear.
    assert!(matches!(
        p.free(ptr),
        Err(MemorySafetyError::InvalidFree { .. })
    ));
}

#[test]
fn precise_exceptions_prevent_data_leak_and_corruption() {
    let mut p = AosProcess::new();
    let secret_holder = p.malloc(64).unwrap();
    p.store(secret_holder, 0x5EC2E7).unwrap();
    let attacker = p.malloc(64).unwrap();

    // An illegal read returns no data (the Err carries no value).
    let offset = p.layout().address(secret_holder) as i64 - p.layout().address(attacker) as i64;
    let forged = (attacker as i64 + offset) as u64;
    assert!(p.load(forged).is_err());

    // An illegal write leaves memory untouched.
    assert!(p.store(forged, 0xBAD).is_err());
    assert_eq!(p.load(secret_holder).unwrap(), 0x5EC2E7);
}

#[test]
fn attack_gallery_is_stable() {
    let outcomes = all_scenarios();
    assert_eq!(outcomes.len(), 10);
    for o in &outcomes {
        assert!(!o.name.is_empty());
        assert!(!o.baseline_effect.is_empty());
    }
}

#[test]
fn freed_pointer_stays_locked_until_base_reuse() {
    let mut p = AosProcess::new();
    let a = p.malloc(512).unwrap();
    // A spacer keeps the freed chunk from merging into the top.
    let _spacer = p.malloc(64).unwrap();
    p.free(a).unwrap();
    // Larger allocations cannot reuse the 512-byte hole, so the
    // dangling pointer stays locked...
    let _b = p.malloc(1024).unwrap();
    let _c = p.malloc(1024).unwrap();
    assert!(p.load(a).is_err());
    // ...until an allocation reuses the same base address, which
    // recreates the same PAC and fresh bounds — the documented
    // PAC-reuse property of the design (§IV-C: "the initialized entry
    // will be reused later by a newly allocated memory object that has
    // the same PAC").
    let d = p.malloc(512).unwrap();
    assert_eq!(p.layout().address(d), p.layout().address(a));
    assert!(p.load(a).is_ok(), "same base, same PAC, live again");
}
