//! Property-based tests for the allocator substrate: whatever sequence
//! of malloc/free a program performs, the heap's structural invariants
//! hold.

use proptest::prelude::*;

use aos_heap::{Chunk, ChunkState, HeapAllocator, HeapConfig};

proptest! {
    /// Live chunks never overlap and always leave room for the
    /// boundary-tag header between them.
    #[test]
    fn live_chunks_never_overlap(
        script in proptest::collection::vec((0u8..3, 0usize..64, 1u64..8192), 1..300),
    ) {
        let mut heap = HeapAllocator::new(HeapConfig::default());
        let mut live: Vec<u64> = Vec::new();
        for (op, pick, size) in script {
            match op {
                0 => {
                    let a = heap.malloc(size).unwrap();
                    live.push(a.base);
                }
                1 | 2 if !live.is_empty() => {
                    let base = live.swap_remove(pick % live.len());
                    heap.free(base).unwrap();
                }
                _ => {}
            }
        }
        let chunks: Vec<&Chunk> = heap.live_chunks().collect();
        prop_assert_eq!(chunks.len() as u64, heap.live_count());
        for pair in chunks.windows(2) {
            prop_assert!(
                pair[0].end() + 16 <= pair[1].base(),
                "chunks {:#x} and {:#x} collide",
                pair[0].base(),
                pair[1].base()
            );
        }
    }

    /// Usable size always covers the request, 16-byte aligned both
    /// ways.
    #[test]
    fn allocations_satisfy_requests(sizes in proptest::collection::vec(1u64..100_000, 1..100)) {
        let mut heap = HeapAllocator::new(HeapConfig::default());
        for size in sizes {
            let a = heap.malloc(size).unwrap();
            prop_assert!(a.usable_size >= size);
            prop_assert_eq!(a.base % 16, 0);
            prop_assert_eq!(a.usable_size % 16, 0);
        }
    }

    /// Free-then-reallocate of everything returns the heap to a state
    /// where the segment does not grow without bound (space is
    /// recycled through bins or the top).
    #[test]
    fn space_is_recycled(size in 1u64..4096, rounds in 1usize..20) {
        let mut heap = HeapAllocator::new(HeapConfig::default());
        let first = heap.malloc(size).unwrap();
        heap.free(first.base).unwrap();
        let end_after_one = heap.segment_end();
        for _ in 0..rounds {
            let a = heap.malloc(size).unwrap();
            heap.free(a.base).unwrap();
        }
        prop_assert_eq!(heap.segment_end(), end_after_one, "no leak across rounds");
    }

    /// The profile's live counter matches ground truth after any
    /// script.
    #[test]
    fn profile_matches_reality(
        script in proptest::collection::vec((0u8..2, 0usize..32, 1u64..2048), 1..150),
    ) {
        let mut heap = HeapAllocator::new(HeapConfig::default());
        let mut live: Vec<u64> = Vec::new();
        let mut allocs = 0u64;
        let mut frees = 0u64;
        for (op, pick, size) in script {
            if op == 0 {
                live.push(heap.malloc(size).unwrap().base);
                allocs += 1;
            } else if !live.is_empty() {
                heap.free(live.swap_remove(pick % live.len())).unwrap();
                frees += 1;
            }
        }
        let p = heap.profile();
        prop_assert_eq!(p.allocations, allocs);
        prop_assert_eq!(p.deallocations, frees);
        prop_assert_eq!(p.live as usize, live.len());
        prop_assert!(p.max_live >= p.live);
    }
}

#[test]
fn chunk_states_reflect_free_lists() {
    let mut heap = HeapAllocator::new(HeapConfig::default());
    let a = heap.malloc(64).unwrap();
    let b = heap.malloc(64).unwrap();
    heap.free(a.base).unwrap();
    assert_eq!(heap.chunk_at(a.base).unwrap().state(), ChunkState::Free);
    assert_eq!(heap.chunk_at(b.base).unwrap().state(), ChunkState::InUse);
}
