//! Golden-file pin of the `aos-lint-matrix/v1` JSON schema.
//!
//! The detection matrix is hand-rolled JSON consumed by scripts
//! (`aos matrix --json`, `aos matrix --out`), so its shape — field
//! names, their order, one verdict block per policy, the per-policy
//! rule-count keys — is an interface. The golden sequence is
//! extracted from a deterministic two-row matrix (clean + a
//! double-free seed, so every policy's rule table appears twice) and
//! regenerated with:
//!
//! ```text
//! AOS_UPDATE_GOLDEN=1 cargo test --test lint_matrix_golden
//! ```

use aos_fault::{plan_fault, FaultKind, FaultSpec};
use aos_isa::SafetyConfig;
use aos_lint::{MatrixReport, MatrixScan, Policy};
use aos_ptrauth::PointerLayout;
use aos_util::Telemetry;
use aos_workloads::profile::by_name;
use aos_workloads::TraceGenerator;

const GOLDEN: &str = "tests/golden/lint_matrix_v1.keys";
const SCALE: f64 = 0.004;

/// Every JSON object key in document order: a quoted token directly
/// followed by a colon. Values are never followed by `:` in this
/// report, so the scan is exact.
fn ordered_keys(json: &str) -> Vec<String> {
    let bytes = json.as_bytes();
    let mut keys = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'"' {
            i += 1;
            continue;
        }
        let start = i + 1;
        let mut j = start;
        while j < bytes.len() && bytes[j] != b'"' {
            if bytes[j] == b'\\' {
                j += 1;
            }
            j += 1;
        }
        let mut k = j + 1;
        while k < bytes.len() && bytes[k] == b' ' {
            k += 1;
        }
        if k < bytes.len() && bytes[k] == b':' {
            keys.push(json[start..j].to_string());
        }
        i = j + 1;
    }
    keys
}

fn matrix_json() -> String {
    let layout = PointerLayout::default();
    let profile = by_name("hmmer").unwrap();
    let stream = || TraceGenerator::new(profile, SafetyConfig::Aos, SCALE);
    let policies = Policy::ALL.to_vec();
    let mut matrix = MatrixReport::new("hmmer", SCALE, vec![1], policies.clone());
    matrix.absorb(
        "clean",
        &MatrixScan::run(&policies, stream(), layout, &Telemetry::disabled()),
    );
    let plan = plan_fault(
        stream(),
        layout,
        FaultSpec {
            kind: FaultKind::DoubleFree,
            seed: 1,
        },
    )
    .expect("fault plans against the instrumented trace");
    matrix.absorb(
        "double-free",
        &MatrixScan::run(&policies, plan.apply(stream()), layout, &Telemetry::disabled()),
    );
    matrix.to_json()
}

#[test]
fn lint_matrix_v1_key_sequence_matches_golden() {
    let json = matrix_json();
    assert!(
        json.contains("\"schema\": \"aos-lint-matrix/v1\""),
        "schema version string drifted"
    );
    // Every policy contributes one verdict block per row.
    for policy in Policy::ALL {
        assert_eq!(
            json.matches(&format!("\"{}\": {{", policy.name())).count(),
            2,
            "{} must appear in both matrix rows",
            policy.name()
        );
    }
    let keys = ordered_keys(&json).join("\n") + "\n";

    if std::env::var_os("AOS_UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN, &keys).expect("write golden");
    }
    let golden = std::fs::read_to_string(GOLDEN)
        .expect("golden file missing; regenerate with AOS_UPDATE_GOLDEN=1");
    assert_eq!(
        keys, golden,
        "the v1 matrix report's key names/order changed; if intentional, bump \
         the schema version and rerun with AOS_UPDATE_GOLDEN=1"
    );
}

/// The matrix envelope is balanced, detection-independent JSON: the
/// clean row and the faulted row emit the same key skeleton, so
/// consumers parse every row with one shape.
#[test]
fn matrix_rows_share_one_key_skeleton() {
    let json = matrix_json();
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    let keys = ordered_keys(&json);
    let subjects: Vec<usize> = keys
        .iter()
        .enumerate()
        .filter(|(_, k)| *k == "subject")
        .map(|(i, _)| i)
        .collect();
    assert_eq!(subjects.len(), 2, "two matrix rows");
    let row_len = subjects[1] - subjects[0];
    assert_eq!(
        keys[subjects[0]..subjects[0] + row_len],
        keys[subjects[1]..subjects[1] + row_len],
        "clean and faulted rows must share the key skeleton"
    );
}
