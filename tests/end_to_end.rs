//! Integration tests: full pipeline runs across crates — generator →
//! instrumentation → machine → statistics.

use aos_core::experiment::{normalized_time, run, SystemUnderTest};
use aos_core::isa::SafetyConfig;
use aos_core::workloads::profile::{by_name, SPEC2006};

const SCALE: f64 = 0.01;

#[test]
fn all_sixteen_workloads_run_on_all_five_systems() {
    for profile in SPEC2006 {
        for config in SafetyConfig::ALL {
            let stats = run(profile, &SystemUnderTest::scaled(config, SCALE));
            assert!(stats.cycles > 0, "{} {config}", profile.name);
            assert!(stats.retired_ops > 0, "{} {config}", profile.name);
            assert_eq!(stats.violations, 0, "{} {config}", profile.name);
            assert!(stats.ipc() > 0.1 && stats.ipc() <= 8.0, "{} {config}", profile.name);
        }
    }
}

#[test]
fn ordering_watchdog_slowest_pa_fastest() {
    // The headline qualitative result of Fig. 14, on a representative
    // workload: Watchdog > AOS ≥ PA, and PA+AOS ≥ AOS.
    let p = by_name("gcc").unwrap();
    let base = run(p, &SystemUnderTest::scaled(SafetyConfig::Baseline, 0.02)).cycles as f64;
    let wd = run(p, &SystemUnderTest::scaled(SafetyConfig::Watchdog, 0.02)).cycles as f64;
    let pa = run(p, &SystemUnderTest::scaled(SafetyConfig::Pa, 0.02)).cycles as f64;
    let aos = run(p, &SystemUnderTest::scaled(SafetyConfig::Aos, 0.02)).cycles as f64;
    let paaos = run(p, &SystemUnderTest::scaled(SafetyConfig::PaAos, 0.02)).cycles as f64;
    assert!(wd > aos, "Watchdog {wd} should exceed AOS {aos}");
    assert!(aos > base, "AOS adds overhead over baseline");
    assert!(pa < aos, "PA alone is cheaper than AOS on gcc");
    assert!(paaos >= aos, "pointer integrity adds on top of AOS");
}

#[test]
fn aos_traffic_exceeds_baseline_but_not_watchdog_on_metadata_heavy_load() {
    let p = by_name("gcc").unwrap();
    let base = run(p, &SystemUnderTest::scaled(SafetyConfig::Baseline, 0.02));
    let aos = run(p, &SystemUnderTest::scaled(SafetyConfig::Aos, 0.02));
    let wd = run(p, &SystemUnderTest::scaled(SafetyConfig::Watchdog, 0.02));
    assert!(aos.traffic.total_bytes() > base.traffic.total_bytes());
    assert!(
        wd.traffic.total_bytes() > aos.traffic.total_bytes(),
        "Watchdog's 24-byte metadata moves more bytes than AOS's 8-byte bounds"
    );
}

#[test]
fn fig15_ablation_ordering_holds() {
    // No-opt must be the slowest AOS variant; both optimizations the
    // fastest (Fig. 15's qualitative content), on the most
    // metadata-sensitive workload.
    let p = by_name("gcc").unwrap();
    let cycles = |l1b: bool, compression: bool| {
        run(
            p,
            &SystemUnderTest {
                l1b,
                compression,
                ..SystemUnderTest::scaled(SafetyConfig::Aos, 0.02)
            },
        )
        .cycles
    };
    let none = cycles(false, false);
    let both = cycles(true, true);
    assert!(none > both, "optimizations must help: {none} vs {both}");
}

#[test]
fn normalized_time_is_stable_across_repeats() {
    let p = by_name("milc").unwrap();
    let sut = SystemUnderTest::scaled(SafetyConfig::Aos, SCALE);
    let a = normalized_time(p, &sut);
    let b = normalized_time(p, &sut);
    assert_eq!(a, b, "whole pipeline is deterministic");
}

#[test]
fn signed_fraction_tracks_profile_heap_fraction() {
    for name in ["hmmer", "sjeng", "lbm"] {
        let p = by_name(name).unwrap();
        let stats = run(p, &SystemUnderTest::scaled(SafetyConfig::Aos, 0.02));
        let measured = stats.mix.signed_access_fraction();
        // Allocator-internal accesses (unsigned) dilute the fraction;
        // allow a loose band around the calibrated value.
        assert!(
            (measured - p.heap_fraction).abs() < 0.25,
            "{name}: measured {measured:.2} vs profile {:.2}",
            p.heap_fraction
        );
    }
}

#[test]
fn mcq_backpressure_throttles_but_never_wedges() {
    // Shrink the MCQ so back-pressure is guaranteed; the run must
    // still complete with every access checked.
    use aos_core::sim::Machine;
    use aos_core::workloads::TraceGenerator;
    let p = by_name("hmmer").unwrap();
    let mut cfg = SystemUnderTest::scaled(SafetyConfig::Aos, 0.02).machine_config();
    cfg.mcu.mcq_entries = 4;
    let stats = Machine::new(cfg).run(TraceGenerator::new(p, SafetyConfig::Aos, 0.02));
    assert!(stats.stalls_mcq > 0, "a 4-entry MCQ must throttle issue");
    assert_eq!(stats.violations, 0);
    assert!(stats.retired_ops > 0);
}
