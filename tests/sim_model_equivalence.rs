//! The stage-structured core and the legacy analytic loop are two
//! models of the same machine: whatever one detects, the other must
//! detect. This suite pins that equivalence — benign runs stay silent
//! under both models on all five systems, every pinned fault kind
//! gets the same detected/missed verdict from both models, and both
//! models retire every op of a benign trace. Timing may differ (that
//! is the point of having two models); verdicts may not.

use aos_core::experiment::{run, SystemUnderTest};
use aos_fault::{plan_fault, FaultKind, FaultSpec};
use aos_isa::SafetyConfig;
use aos_ptrauth::PointerLayout;
use aos_sim::{Machine, RunStats, SimModel};
use aos_workloads::profile::by_name;
use aos_workloads::TraceGenerator;

const SCALE: f64 = 0.004;

const MODELS: [SimModel; 2] = [SimModel::Stage, SimModel::Approximate];

/// Benign equivalence on every system: zero violations under both
/// models, and both models retire the identical number of ops (the
/// whole trace — neither model is allowed to drop work on the floor).
#[test]
fn benign_verdicts_and_retirement_agree_on_all_five_systems() {
    let profile = by_name("hmmer").unwrap();
    for system in SafetyConfig::ALL {
        let per_model: Vec<RunStats> = MODELS
            .iter()
            .map(|&model| {
                run(
                    profile,
                    &SystemUnderTest::scaled(system, SCALE).with_model(model),
                )
            })
            .collect();
        let (stage, approx) = (&per_model[0], &per_model[1]);
        assert_eq!(stage.violations, 0, "{system}: stage flagged a benign trace");
        assert_eq!(
            approx.violations, 0,
            "{system}: approximate flagged a benign trace"
        );
        assert_eq!(
            stage.retired_ops, approx.retired_ops,
            "{system}: the models disagree on how many ops the trace holds"
        );
        assert_eq!(
            stage.mix, approx.mix,
            "{system}: committed-op mix must be model-independent"
        );
    }
}

/// Runs one seeded fault under `model` on `system` and returns the
/// machine's violation count.
fn faulted_violations(kind: FaultKind, system: SafetyConfig, model: SimModel) -> u64 {
    let profile = by_name("hmmer").unwrap();
    let sut = SystemUnderTest::scaled(system, SCALE).with_model(model);
    let stream = || TraceGenerator::new(profile, SafetyConfig::Aos, SCALE);
    let plan = plan_fault(stream(), PointerLayout::default(), FaultSpec { kind, seed: 1 })
        .expect("fault plans against the instrumented trace");
    Machine::new(sut.machine_config())
        .run(plan.apply(stream()))
        .violations
}

/// Fault-detection verdicts are model-independent: for every pinned
/// fault kind, AOS detects under both models and the Baseline misses
/// under both models. The stage core's delayed-retirement exception
/// path and the analytic loop's event-time accounting must converge
/// on the same answer.
#[test]
fn fault_verdicts_agree_between_models() {
    for kind in FaultKind::ALL {
        let stage = faulted_violations(kind, SafetyConfig::Aos, SimModel::Stage);
        let approx = faulted_violations(kind, SafetyConfig::Aos, SimModel::Approximate);
        assert!(stage > 0, "{kind}: stage core missed the fault");
        assert!(approx > 0, "{kind}: approximate model missed the fault");
        assert_eq!(
            stage, approx,
            "{kind}: the models disagree on the violation count"
        );
        for model in MODELS {
            assert_eq!(
                faulted_violations(kind, SafetyConfig::Baseline, model),
                0,
                "{kind}: baseline under {} has no checks to trip",
                model.name()
            );
        }
    }
}

/// The default model is the stage core — the refactor is the machine,
/// not an opt-in mode — and the campaign's wire token round-trips.
#[test]
fn stage_is_the_default_model_and_tokens_round_trip() {
    assert_eq!(SimModel::default(), SimModel::Stage);
    assert_eq!(
        SystemUnderTest::standard(SafetyConfig::Aos).model,
        SimModel::Stage
    );
    for model in MODELS {
        assert_eq!(SimModel::parse(model.name()), Some(model));
    }
}
