//! Telemetry differential tests: the two proof obligations of the
//! zero-cost telemetry layer.
//!
//! 1. **Determinism across pipeline shapes** — a streaming run and a
//!    materialized run of the same seed produce *bit-identical*
//!    telemetry snapshots: the counters observe the simulation, not
//!    the plumbing the trace arrives through.
//! 2. **Observer effect = 0** — a run with telemetry disabled produces
//!    a `RunStats` bit-identical (telemetry snapshot aside) to one
//!    with telemetry enabled: recording the counters never changes
//!    what the machine does.

use aos_core::experiment::{run, run_metered, SystemUnderTest};
use aos_core::sim::Machine;
use aos_isa::{Op, SafetyConfig};
use aos_util::{Counter, Gauge};
use aos_workloads::profile::by_name;
use aos_workloads::TraceGenerator;

const PROFILES: [&str; 3] = ["hmmer", "gcc", "omnetpp"];
const SCALE: f64 = 0.004;

/// Streaming vs materialized, telemetry on: the full `RunStats`
/// (snapshot included) and the snapshot itself are bit-identical.
#[test]
fn streaming_and_materialized_telemetry_snapshots_are_bit_identical() {
    for name in PROFILES {
        let profile = by_name(name).unwrap();
        let sut = SystemUnderTest::scaled(SafetyConfig::Aos, SCALE).with_telemetry(true);

        let trace: Vec<Op> = TraceGenerator::new(profile, SafetyConfig::Aos, SCALE).collect();
        let materialized = Machine::new(sut.machine_config()).run(trace);
        let streamed = run(profile, &sut);

        assert_eq!(materialized, streamed, "{name}: RunStats diverged");
        assert_eq!(
            materialized.telemetry, streamed.telemetry,
            "{name}: telemetry snapshot diverged"
        );
        assert!(streamed.telemetry.enabled);
        assert!(!streamed.telemetry.is_empty(), "{name}: nothing was counted");

        // The metered campaign path is equally transparent.
        let metered = run_metered(profile, &sut);
        assert_eq!(materialized.telemetry, metered.stats.telemetry, "{name} metered");
    }
}

/// Two runs of the same seed agree counter for counter — the snapshot
/// is a pure function of `(workload, system, scale)`.
#[test]
fn telemetry_snapshots_are_deterministic_across_runs() {
    let profile = by_name("hmmer").unwrap();
    let sut = SystemUnderTest::scaled(SafetyConfig::Aos, SCALE).with_telemetry(true);
    let a = run(profile, &sut).telemetry;
    let b = run(profile, &sut).telemetry;
    assert_eq!(a, b);
    assert_eq!(a.counter(Counter::McqEnqueued), b.counter(Counter::McqEnqueued));
    assert_eq!(a.gauge(Gauge::McqPeakOccupancy), b.gauge(Gauge::McqPeakOccupancy));
}

/// The observer-effect differential: with telemetry off the machine
/// simulates the *exact* same run — every cycle, cache, MCU, BWB and
/// violation statistic matches the telemetry-enabled run once the
/// snapshot itself is projected out.
#[test]
fn disabled_telemetry_has_zero_observer_effect() {
    for name in PROFILES {
        let profile = by_name(name).unwrap();
        for system in [SafetyConfig::Baseline, SafetyConfig::Aos] {
            let sut = SystemUnderTest::scaled(system, SCALE);
            let disabled = run(profile, &sut.with_telemetry(false));
            let enabled = run(profile, &sut.with_telemetry(true));

            assert_eq!(
                enabled.without_telemetry(),
                disabled,
                "{name}/{system}: telemetry changed the simulation"
            );
            assert!(!disabled.telemetry.enabled);
            assert!(
                disabled.telemetry.is_empty(),
                "{name}/{system}: a disabled handle recorded something"
            );
        }
    }
}

/// The snapshot agrees with the statistics the machine already kept:
/// the two ledgers are independent paths to the same events.
#[test]
fn telemetry_cross_checks_run_stats() {
    let profile = by_name("hmmer").unwrap();
    let sut = SystemUnderTest::scaled(SafetyConfig::Aos, SCALE).with_telemetry(true);
    let stats = run(profile, &sut);
    let t = &stats.telemetry;

    assert_eq!(t.counter(Counter::BwbHits), stats.bwb.hits);
    assert_eq!(t.counter(Counter::BwbMisses), stats.bwb.misses);
    assert_eq!(t.counter(Counter::SimViolations), stats.violations);
    assert_eq!(t.counter(Counter::HbtResizes), stats.hbt_resizes);
    let rate = t.bwb_hit_rate() - stats.bwb.hit_rate();
    assert!(rate.abs() < 1e-12, "hit-rate ledgers diverged by {rate}");
}
