//! Per-process isolation: the HBT is per-process (paper §V-B) and PA
//! keys are per-process state (§III-D), so signed pointers have no
//! authority outside the process that minted them.

use aos_core::qarma::PacKey;
use aos_core::{AosProcess, ProcessConfig};

#[test]
fn pointers_carry_no_authority_across_processes() {
    // Two processes, different PA keys (as different processes get).
    let mut alice = AosProcess::with_config(ProcessConfig {
        key: PacKey::new(0x1111_2222_3333_4444, 0x5555_6666_7777_8888),
        ..ProcessConfig::default()
    });
    let mut bob = AosProcess::with_config(ProcessConfig {
        key: PacKey::new(0xAAAA_BBBB_CCCC_DDDD, 0xEEEE_FFFF_0101_0202),
        ..ProcessConfig::default()
    });

    let a_ptr = alice.malloc(64).unwrap();
    alice.store(a_ptr, 0x5EC2E7).unwrap();

    // Bob allocates the same address in his own address space (both
    // heaps start at the same base) — but his bounds live under *his*
    // PAC, in *his* table.
    let b_ptr = bob.malloc(64).unwrap();
    assert_eq!(
        alice.layout().address(a_ptr),
        bob.layout().address(b_ptr),
        "same virtual address in both processes"
    );
    assert_ne!(
        alice.layout().pac(a_ptr),
        bob.layout().pac(b_ptr),
        "different keys give different PACs for the same address"
    );

    // Alice's pointer, injected into Bob's process, fails his bounds
    // check (wrong PAC row / no matching bounds).
    assert!(bob.load(a_ptr).is_err(), "foreign pointer has no authority");
    // And vice versa.
    assert!(alice.load(b_ptr).is_err());
    // While each process keeps working with its own pointer.
    assert_eq!(alice.load(a_ptr).unwrap(), 0x5EC2E7);
    assert!(bob.load(b_ptr).is_ok());
}

#[test]
fn same_key_separate_tables_still_isolate_frees() {
    // Even with identical keys (fork-style), the tables are separate:
    // freeing in one process does not unlock the other's pointer.
    let mut a = AosProcess::new();
    let mut b = AosProcess::new();
    let pa = a.malloc(64).unwrap();
    let pb = b.malloc(64).unwrap();
    assert_eq!(pa, pb, "identical config ⇒ identical signed pointer");
    a.free(pa).unwrap();
    assert!(a.load(pa).is_err(), "freed in a");
    assert!(b.load(pb).is_ok(), "still live in b");
}

#[test]
fn context_is_part_of_the_signing_domain() {
    // Different signing contexts (the paper uses SP as the modifier)
    // change every PAC.
    let a = AosProcess::with_config(ProcessConfig {
        context: 0x1111,
        ..ProcessConfig::default()
    });
    let b = AosProcess::with_config(ProcessConfig {
        context: 0x2222,
        ..ProcessConfig::default()
    });
    assert_ne!(
        a.signer().pac_for(0x4000_0010, 0x1111),
        b.signer().pac_for(0x4000_0010, 0x2222)
    );
}
