//! The security matrix, pinned per kind: every injected spatial,
//! temporal and forgery fault is detected by the AOS machine and
//! missed by the unprotected Baseline, with zero false positives on
//! clean traces. This is the repo's executable form of the paper's
//! §VII security evaluation.
//!
//! Detection is sourced from the machines' telemetry ledger — the
//! `sim_violations` counter delta between the faulted and the clean
//! replay — rather than re-deriving detected/missed verdicts in the
//! test. One pinned table drives every kind × system, and the ledger
//! is cross-checked against `RunStats::violations` so the two
//! accounting paths can never drift apart silently.

use aos_core::experiment::SystemUnderTest;
use aos_fault::campaign::FaultCampaignConfig;
use aos_fault::{
    expected_lint_rules, expected_policy_class, expected_policy_rules, plan_fault,
    run_fault_campaign, FaultKind, FaultSpec, LintClass,
};
use aos_isa::SafetyConfig;
use aos_lint::Policy;
use aos_ptrauth::PointerLayout;
use aos_sim::Machine;
use aos_util::{Counter, TelemetrySnapshot};
use aos_workloads::profile::by_name;
use aos_workloads::TraceGenerator;

const SCALE: f64 = 0.004;
const SEEDS: [u64; 3] = [1, 7, 42];

/// Expected telemetry-sourced detections per kind over [`SEEDS`]:
/// every seed of every kind must be caught under AOS. The Baseline
/// expectation is zero across the board — pinned once in the loop,
/// not per kind.
const PINNED: [(FaultKind, u64); 6] = [
    (FaultKind::OverflowWrite, SEEDS.len() as u64),
    (FaultKind::UnderflowWrite, SEEDS.len() as u64),
    (FaultKind::UseAfterFree, SEEDS.len() as u64),
    (FaultKind::DoubleFree, SEEDS.len() as u64),
    (FaultKind::PacTamper, SEEDS.len() as u64),
    (FaultKind::AhcForge, SEEDS.len() as u64),
];

/// Replays the clean and the faulted stream for one `(kind, seed)` on
/// `system` with telemetry on, returning the two snapshots. The
/// cross-check that each ledger agrees with the machine's own
/// violation count lives here, so every trial below inherits it.
fn trial_snapshots(
    kind: FaultKind,
    seed: u64,
    system: SafetyConfig,
) -> (TelemetrySnapshot, TelemetrySnapshot) {
    let profile = by_name("hmmer").unwrap();
    let sut = SystemUnderTest::scaled(system, SCALE).with_telemetry(true);
    let stream = || TraceGenerator::new(profile, SafetyConfig::Aos, SCALE);
    let plan = plan_fault(stream(), PointerLayout::default(), FaultSpec { kind, seed })
        .expect("fault plans against the instrumented trace");
    let clean = Machine::new(sut.machine_config()).run(stream());
    let faulty = Machine::new(sut.machine_config()).run(plan.apply(stream()));
    assert_eq!(
        clean.telemetry.counter(Counter::SimViolations),
        clean.violations,
        "{kind} seed {seed} on {system}: clean ledger drifted from RunStats"
    );
    assert_eq!(
        faulty.telemetry.counter(Counter::SimViolations),
        faulty.violations,
        "{kind} seed {seed} on {system}: faulty ledger drifted from RunStats"
    );
    (clean.telemetry, faulty.telemetry)
}

/// Telemetry-sourced detections for one kind on one system: the
/// number of seeds whose faulted replay raised more `sim_violations`
/// than its clean replay. Clean replays must stay silent (the
/// false-positive gate) on every system.
fn detections(kind: FaultKind, system: SafetyConfig) -> u64 {
    SEEDS
        .iter()
        .filter(|&&seed| {
            let (clean, faulty) = trial_snapshots(kind, seed, system);
            assert_eq!(
                clean.counter(Counter::SimViolations),
                0,
                "{kind} seed {seed} on {system}: clean trace raised a violation"
            );
            faulty.counter(Counter::SimViolations) > clean.counter(Counter::SimViolations)
        })
        .count() as u64
}

#[test]
fn aos_detects_and_baseline_misses_every_pinned_fault() {
    for (kind, expected) in PINNED {
        assert_eq!(
            detections(kind, SafetyConfig::Aos),
            expected,
            "AOS must detect every seed of {kind}"
        );
        assert_eq!(
            detections(kind, SafetyConfig::Baseline),
            0,
            "Baseline unexpectedly caught {kind}"
        );
    }
}

/// Baseline machines record nothing AOS-specific: their faulted runs
/// keep the whole safety-pipeline ledger at zero, which is what makes
/// the detection asymmetry above meaningful.
#[test]
fn baseline_faulted_runs_keep_the_safety_ledger_empty() {
    let (_, faulty) = trial_snapshots(FaultKind::OverflowWrite, 1, SafetyConfig::Baseline);
    for c in [
        Counter::SimViolations,
        Counter::HbtInserts,
        Counter::BwbHits,
        Counter::BwbMisses,
        Counter::McqEnqueued,
    ] {
        assert_eq!(faulty.counter(c), 0, "baseline counted {c:?}");
    }
}

/// The static/dynamic split of the six base kinds, pinned as a table
/// instead of merely annotated: the spatial writes are invisible to
/// the linter (protocol-clean streams) while the temporal and forgery
/// kinds each fire an exact rule set. A kind silently drifting across
/// the split — or firing a different rule — fails here even though it
/// would still be self-consistent under the weaker `is_consistent`
/// gate.
#[test]
fn lint_cross_check_matches_the_pinned_static_dynamic_split() {
    let profile = by_name("hmmer").unwrap();
    let config = FaultCampaignConfig::standard(*profile, SCALE, vec![1, 7]);
    let outcome = run_fault_campaign(&config).expect("fault campaign runs");
    assert_eq!(
        outcome.lint.clean_diagnostics, 0,
        "the clean trace must lint clean"
    );
    assert_eq!(outcome.lint.kinds.len(), FaultKind::ALL.len());
    for check in &outcome.lint.kinds {
        assert_eq!(
            check.classification(),
            LintClass::expected_for(check.kind),
            "{} drifted across the static/dynamic split",
            check.kind.name()
        );
        let pinned: Vec<&'static str> = expected_lint_rules(check.kind)
            .iter()
            .map(|r| r.name())
            .collect();
        assert_eq!(
            check.rules,
            pinned,
            "{} fired a different rule set than pinned",
            check.kind.name()
        );
    }
    assert!(outcome.lint.matches_pinned_split());
    assert!(outcome.lint.is_consistent());
}

/// The `--policy all` strict gate's evidence, end to end: sweeping
/// the campaign under every static policy lands each one exactly on
/// its own pinned rule table (zero clean-trace noise included), the
/// AOS policy column reproduces the legacy lint cross-check verdict
/// for verdict, and the campaign report carries one annotation per
/// policy.
#[test]
fn every_policy_cross_check_lands_on_its_pinned_table() {
    let profile = by_name("hmmer").unwrap();
    let config = FaultCampaignConfig {
        policies: Policy::ALL.to_vec(),
        ..FaultCampaignConfig::standard(*profile, SCALE, vec![1, 7])
    };
    let outcome = run_fault_campaign(&config).expect("fault campaign runs");
    assert_eq!(outcome.policies.len(), Policy::ALL.len());
    for check in &outcome.policies {
        assert_eq!(
            check.clean_diagnostics,
            0,
            "{} flagged the clean trace",
            check.policy.name()
        );
        assert!(
            check.matches_pinned_split(),
            "{} drifted off its pinned table: {}",
            check.policy.name(),
            check.to_json_value()
        );
        for k in &check.kinds {
            assert_eq!(
                k.rules,
                expected_policy_rules(check.policy, k.kind),
                "{} / {}",
                check.policy.name(),
                k.kind.name()
            );
            assert_eq!(
                k.classification(),
                expected_policy_class(check.policy, k.kind),
                "{} / {}",
                check.policy.name(),
                k.kind.name()
            );
        }
    }
    // The AOS policy column and the legacy lint cross-check are the
    // same scan — verdict-identical, kind by kind.
    let aos = &outcome.policies[0];
    assert_eq!(aos.policy, Policy::Aos);
    assert_eq!(aos.clean_diagnostics, outcome.lint.clean_diagnostics);
    for (k, legacy) in aos.kinds.iter().zip(&outcome.lint.kinds) {
        assert_eq!(k.kind, legacy.kind);
        assert_eq!(k.flagged, legacy.flagged, "{}", k.kind.name());
        assert_eq!(k.rules, legacy.rules, "{}", k.kind.name());
    }
    // The report annotation carries every policy's verdict.
    let json = outcome.report.to_json();
    assert!(json.contains("\"policy_cross_check\""));
    for p in Policy::ALL {
        assert!(json.contains(&format!("\"policy\": \"{}\"", p.name())), "{p:?}");
    }
}

#[test]
fn pa_aos_system_also_detects_the_pinned_faults() {
    let (clean, faulty) = trial_snapshots(FaultKind::OverflowWrite, 1, SafetyConfig::PaAos);
    assert_eq!(clean.counter(Counter::SimViolations), 0);
    assert!(faulty.counter(Counter::SimViolations) > 0);
}
