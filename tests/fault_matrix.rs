//! The security matrix, pinned per seed: every injected spatial and
//! temporal fault is detected by the AOS machine and missed by the
//! unprotected Baseline, with zero false positives on clean traces.
//! This is the repo's executable form of the paper's §VII security
//! evaluation.

use aos_core::experiment::SystemUnderTest;
use aos_fault::{run_trial, FaultKind, FaultSpec, Verdict};
use aos_isa::SafetyConfig;
use aos_workloads::profile::by_name;

const SCALE: f64 = 0.004;
const SEEDS: [u64; 3] = [1, 7, 42];

#[test]
fn aos_detects_and_baseline_misses_every_pinned_fault() {
    let profile = by_name("hmmer").unwrap();
    for kind in [
        FaultKind::OverflowWrite,
        FaultKind::UnderflowWrite,
        FaultKind::UseAfterFree,
        FaultKind::DoubleFree,
    ] {
        for seed in SEEDS {
            let spec = FaultSpec { kind, seed };

            let aos = run_trial(
                profile,
                &SystemUnderTest::scaled(SafetyConfig::Aos, SCALE),
                spec,
            )
            .unwrap();
            assert_eq!(
                aos.verdict(),
                Verdict::Detected,
                "AOS must detect {kind} seed {seed}: {}",
                aos.description
            );
            assert!(
                !aos.false_positive(),
                "clean AOS trace raised a violation ({kind} seed {seed})"
            );

            let baseline = run_trial(
                profile,
                &SystemUnderTest::scaled(SafetyConfig::Baseline, SCALE),
                spec,
            )
            .unwrap();
            assert_eq!(
                baseline.verdict(),
                Verdict::Missed,
                "Baseline unexpectedly caught {kind} seed {seed}"
            );
            assert_eq!(baseline.faulty_violations, 0);
        }
    }
}

#[test]
fn metadata_forgeries_are_detected_under_aos() {
    let profile = by_name("hmmer").unwrap();
    for kind in [FaultKind::PacTamper, FaultKind::AhcForge] {
        for seed in SEEDS {
            let trial = run_trial(
                profile,
                &SystemUnderTest::scaled(SafetyConfig::Aos, SCALE),
                FaultSpec { kind, seed },
            )
            .unwrap();
            assert_eq!(
                trial.verdict(),
                Verdict::Detected,
                "AOS must detect {kind} seed {seed}: {}",
                trial.description
            );
            assert!(!trial.false_positive());
        }
    }
}

#[test]
fn pa_aos_system_also_detects_the_pinned_faults() {
    let profile = by_name("hmmer").unwrap();
    let trial = run_trial(
        profile,
        &SystemUnderTest::scaled(SafetyConfig::PaAos, SCALE),
        FaultSpec {
            kind: FaultKind::OverflowWrite,
            seed: 1,
        },
    )
    .unwrap();
    assert_eq!(trial.verdict(), Verdict::Detected);
    assert!(!trial.false_positive());
}
