//! Golden-file pin of the `aos-lint-report/v1` JSON schema.
//!
//! Like the campaign report, the lint report is hand-rolled JSON
//! consumed by scripts (`aos lint --json`), so its shape — field
//! names, their order, the nine rule-count keys, and the per-finding
//! keys — is an interface. The golden sequence is extracted from the
//! deterministic double-free-faulted hmmer report (two findings, so
//! the finding-object keys are pinned too) and regenerated with:
//!
//! ```text
//! AOS_UPDATE_GOLDEN=1 cargo test --test lint_report_golden
//! ```

use aos_fault::{plan_fault, FaultKind, FaultSpec};
use aos_isa::SafetyConfig;
use aos_lint::lint_stream;
use aos_ptrauth::PointerLayout;
use aos_workloads::profile::by_name;
use aos_workloads::TraceGenerator;

const GOLDEN: &str = "tests/golden/lint_report_v1.keys";
const SCALE: f64 = 0.004;

/// Every JSON object key in document order: a quoted token directly
/// followed by a colon. Values are never followed by `:` in this
/// report, so the scan is exact.
fn ordered_keys(json: &str) -> Vec<String> {
    let bytes = json.as_bytes();
    let mut keys = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'"' {
            i += 1;
            continue;
        }
        let start = i + 1;
        let mut j = start;
        while j < bytes.len() && bytes[j] != b'"' {
            if bytes[j] == b'\\' {
                j += 1;
            }
            j += 1;
        }
        let mut k = j + 1;
        while k < bytes.len() && bytes[k] == b' ' {
            k += 1;
        }
        if k < bytes.len() && bytes[k] == b':' {
            keys.push(json[start..j].to_string());
        }
        i = j + 1;
    }
    keys
}

fn report_json(fault: Option<FaultKind>) -> String {
    let layout = PointerLayout::default();
    let profile = by_name("hmmer").unwrap();
    let stream = || TraceGenerator::new(profile, SafetyConfig::Aos, SCALE);
    let report = match fault {
        Some(kind) => {
            let plan = plan_fault(stream(), layout, FaultSpec { kind, seed: 1 })
                .expect("fault plans against the instrumented trace");
            lint_stream(plan.apply(stream()), layout)
        }
        None => lint_stream(stream(), layout),
    };
    report.to_json()
}

#[test]
fn lint_report_v1_key_sequence_matches_golden() {
    let json = report_json(Some(FaultKind::DoubleFree));
    assert!(
        json.contains("\"schema\": \"aos-lint-report/v1\""),
        "schema version string drifted"
    );
    let keys = ordered_keys(&json).join("\n") + "\n";

    if std::env::var_os("AOS_UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN, &keys).expect("write golden");
    }
    let golden = std::fs::read_to_string(GOLDEN)
        .expect("golden file missing; regenerate with AOS_UPDATE_GOLDEN=1");
    assert_eq!(
        keys, golden,
        "the v1 lint report's key names/order changed; if intentional, bump \
         the schema version and rerun with AOS_UPDATE_GOLDEN=1"
    );
}

/// The report envelope does not depend on what the linter found: a
/// clean report emits exactly the golden keys up to `findings`, whose
/// array is simply empty. Consumers never branch on cleanliness to
/// parse the header.
#[test]
fn clean_and_faulted_reports_share_the_envelope() {
    let clean = ordered_keys(&report_json(None));
    let faulted = ordered_keys(&report_json(Some(FaultKind::DoubleFree)));
    let envelope = faulted
        .iter()
        .position(|k| k == "findings")
        .expect("report has a findings key");
    assert_eq!(clean.len(), envelope + 1, "clean report has extra keys");
    assert_eq!(clean, faulted[..=envelope]);
}
