//! Streaming-vs-materialized equivalence: the proof obligation of the
//! streaming trace pipeline. Feeding a generator straight into the
//! machine (never materializing the trace) must be *bit-identical* to
//! the old collect-then-run path — same cycles, same instruction-mix
//! counters, same cache/traffic statistics, same fault verdicts — and
//! the fault planners must run in `O(window)` memory however long the
//! trace is.

use aos_core::experiment::{run, run_metered, SystemUnderTest};
use aos_core::sim::Machine;
use aos_fault::{inject, plan_fault, run_trial, FaultKind, FaultSpec, UAF_DELAY_OPS};
use aos_isa::stream::{BufferedOps, OpStream};
use aos_isa::{Op, SafetyConfig};
use aos_ptrauth::PointerLayout;
use aos_workloads::profile::by_name;
use aos_workloads::TraceGenerator;

const PROFILES: [&str; 3] = ["hmmer", "gcc", "omnetpp"];
const SYSTEMS: [SafetyConfig; 2] = [SafetyConfig::Baseline, SafetyConfig::Aos];
const SCALE: f64 = 0.004;

/// For 3 profiles × {Baseline, Aos}: the streamed run and the
/// pre-collected run produce bit-identical `RunStats` (the derived
/// `PartialEq` covers cycles, retired ops, the full `InstMix`, cache,
/// MCU, BWB and traffic counters).
#[test]
fn streaming_and_materialized_runs_are_bit_identical() {
    for name in PROFILES {
        let profile = by_name(name).unwrap();
        for system in SYSTEMS {
            let sut = SystemUnderTest::scaled(system, SCALE);

            // Materialized: collect first, then simulate the Vec.
            let trace: Vec<Op> = TraceGenerator::new(profile, system, SCALE).collect();
            let materialized = Machine::new(sut.machine_config()).run(trace);

            // Streaming: generator straight into the machine.
            let streamed = run(profile, &sut);
            assert_eq!(materialized, streamed, "{name}/{system}");

            // And the metered path is equally transparent.
            let metered = run_metered(profile, &sut);
            assert_eq!(materialized, metered.stats, "{name}/{system} metered");
            assert!(metered.trace_ops > 0);
        }
    }
}

/// Instruction-mix counters specifically: identical per op class, not
/// just in aggregate.
#[test]
fn instruction_mix_counters_survive_streaming() {
    let profile = by_name("hmmer").unwrap();
    let sut = SystemUnderTest::scaled(SafetyConfig::Aos, SCALE);
    let trace: Vec<Op> = TraceGenerator::new(profile, SafetyConfig::Aos, SCALE).collect();
    let materialized = Machine::new(sut.machine_config()).run(trace).mix;
    let streamed = run(profile, &sut).mix;
    assert_eq!(materialized.unsigned_loads, streamed.unsigned_loads);
    assert_eq!(materialized.unsigned_stores, streamed.unsigned_stores);
    assert_eq!(materialized.signed_loads, streamed.signed_loads);
    assert_eq!(materialized.signed_stores, streamed.signed_stores);
    assert_eq!(materialized.bnd_ops, streamed.bnd_ops);
    assert_eq!(materialized.pac_ops, streamed.pac_ops);
}

/// Every fault class: the streaming planner picks the same verdict as
/// the materialized `inject` path for both the protected and the
/// unprotected machine, and the two faulted op streams are identical.
#[test]
fn fault_matrix_verdicts_survive_streaming() {
    let profile = by_name("hmmer").unwrap();
    let layout = PointerLayout::default();
    let trace: Vec<Op> = TraceGenerator::new(profile, SafetyConfig::Aos, SCALE).collect();
    for kind in FaultKind::ALL {
        for seed in [1u64, 7] {
            let spec = FaultSpec { kind, seed };

            // Identical faulted streams.
            let plan =
                plan_fault(trace.iter().copied(), layout, spec).unwrap();
            let streamed: Vec<Op> = plan
                .apply(TraceGenerator::new(profile, SafetyConfig::Aos, SCALE))
                .collect();
            let materialized = inject(&trace, layout, spec).unwrap();
            assert_eq!(streamed, materialized.ops, "{kind} seed {seed}");

            // Identical verdicts per system, and identical violation
            // counts between the streamed trial and a materialized
            // replay of the same faulted trace.
            for system in SYSTEMS {
                let sut = SystemUnderTest::scaled(system, SCALE);
                let trial = run_trial(profile, &sut, spec).unwrap();
                let replayed = Machine::new(sut.machine_config())
                    .run(materialized.ops.iter().copied());
                assert_eq!(
                    trial.faulty_violations, replayed.violations,
                    "{kind} seed {seed} on {system}"
                );
            }
        }
    }
}

/// The UAF planner's lookahead buffer stays bounded by the retirement
/// window no matter how long the scanned trace is — the `O(window)`
/// memory claim, measured.
#[test]
fn uaf_window_adapter_memory_is_bounded() {
    let profile = by_name("gcc").unwrap();
    let spec = FaultSpec {
        kind: FaultKind::UseAfterFree,
        seed: 42,
    };
    // Scale up: the scanned trace is thousands of windows long.
    let plan = plan_fault(
        TraceGenerator::new(profile, SafetyConfig::Aos, 0.02),
        PointerLayout::default(),
        spec,
    )
    .unwrap();
    assert!(
        plan.scanned_ops > 16 * (UAF_DELAY_OPS + 1),
        "trace only {} ops — not long enough to exercise the bound",
        plan.scanned_ops
    );
    assert!(
        plan.peak_buffered_ops <= UAF_DELAY_OPS + 1,
        "planner buffered {} ops over a {}-op window",
        plan.peak_buffered_ops,
        UAF_DELAY_OPS
    );
}

/// The whole streaming pipeline — generator, splice adapter, meter —
/// buffers a bounded number of ops end to end.
#[test]
fn full_streaming_pipeline_is_o_window() {
    let profile = by_name("hmmer").unwrap();
    let layout = PointerLayout::default();
    let spec = FaultSpec {
        kind: FaultKind::OverflowWrite,
        seed: 1,
    };
    let plan = plan_fault(
        TraceGenerator::new(profile, SafetyConfig::Aos, SCALE),
        layout,
        spec,
    )
    .unwrap();
    let mut stream = plan
        .apply(TraceGenerator::new(profile, SafetyConfig::Aos, SCALE))
        .metered();
    let mut total = 0u64;
    for _op in &mut stream {
        total += 1;
    }
    assert_eq!(total, stream.ops());
    assert!(total > 10_000, "trace long enough to mean something");
    assert!(
        stream.peak_buffered_ops() < 64,
        "pipeline buffered {} ops for a {total}-op trace",
        stream.peak_buffered_ops()
    );
}
