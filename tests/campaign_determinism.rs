//! The campaign runner's determinism guarantee: a parallel campaign
//! produces, cell for cell, the exact `RunStats` the sequential
//! single-cell API produces — for every one of the five systems and at
//! any thread count. This is what licenses reproducing paper figures
//! through the worker pool.

use aos_core::experiment::campaign::{matrix, run_campaign, CampaignOptions};
use aos_core::experiment::{run, SystemUnderTest};
use aos_core::isa::SafetyConfig;
use aos_core::workloads::profile::by_name;

#[test]
fn parallel_campaign_matches_sequential_runs_for_all_systems() {
    let profiles = [*by_name("mcf").unwrap(), *by_name("axel").unwrap()];
    let systems = SafetyConfig::ALL.map(|s| SystemUnderTest::scaled(s, 0.004));
    let cells = matrix(profiles, systems);
    assert_eq!(cells.len(), profiles.len() * systems.len());

    let report = run_campaign(&cells, &CampaignOptions::with_threads(4));
    assert_eq!(report.results.len(), cells.len());

    for (cell, result) in cells.iter().zip(&report.results) {
        let sequential = run(&cell.profile, &cell.sut);
        // RunStats is PartialEq over every counter it carries — cycles,
        // cache/traffic/MCU/BWB statistics, violations, mispredicts —
        // so one comparison covers the full field set.
        assert_eq!(
            &sequential,
            result.stats().expect("campaign cell unexpectedly failed"),
            "parallel and sequential stats diverge for {}",
            cell.label()
        );
        assert_eq!(result.cell.label(), cell.label());
    }
}

#[test]
fn thread_count_never_changes_results() {
    let profiles = [*by_name("soplex").unwrap()];
    let systems = SafetyConfig::ALL.map(|s| SystemUnderTest::scaled(s, 0.004));
    let cells = matrix(profiles, systems);

    let one = run_campaign(&cells, &CampaignOptions::with_threads(1));
    for threads in [2, 3, 8] {
        let many = run_campaign(&cells, &CampaignOptions::with_threads(threads));
        for (a, b) in one.results.iter().zip(&many.results) {
            assert_eq!(
                a.stats(),
                b.stats(),
                "{} at {threads} threads",
                a.cell.label()
            );
        }
    }
}
