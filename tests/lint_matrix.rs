//! The differential static-vs-dynamic detection matrix, pinned per
//! fault kind: temporal faults and metadata forgeries (UAF, double
//! free, PAC tamper, AHC forge) are *protocol breaks* the streaming
//! linter proves without running a machine, while spatial
//! overflows/underflows are clean protocol streams whose addresses
//! are simply wrong — only the HBT bounds check at runtime can see
//! them. Together the two detectors cover every kind, which is the
//! repo's executable form of the paper's claim that AOS needs
//! *runtime* bounds checks precisely because correct instrumentation
//! cannot rule out spatial violations.
//!
//! Also pinned here: clean generated traces lint clean on every
//! system, and the linter's memory stays O(live-PACs) with zero op
//! buffering (asserted through the metered adapter).

use aos_fault::{
    plan_fault, run_fault_campaign, FaultCampaignConfig, FaultKind, FaultSpec, LintClass,
};
use aos_fuzz::scenario::plan_scenario;
use aos_fuzz::{ScenarioSpec, StepKind};
use aos_isa::SafetyConfig;
use aos_lint::{lint_stream, lint_stream_metered, MatrixScan, Policy, PolicyReport, Rule};
use aos_ptrauth::PointerLayout;
use aos_sim::Machine;
use aos_util::Telemetry;
use aos_workloads::profile::by_name;
use aos_workloads::{TraceGenerator, WorkloadProfile};

use aos_core::experiment::SystemUnderTest;

const SCALE: f64 = 0.004;
const SEEDS: [u64; 3] = [1, 7, 42];

/// The pinned matrix over [`SEEDS`]: each kind's lint classification
/// and the exact rule set its injection fires. `DoubleFree` fires two
/// rules because the injected extra `bndclr` both re-clears a cleared
/// PAC and leaves the clear/strip balance open at end of stream.
const PINNED: [(FaultKind, LintClass, &[Rule]); 6] = [
    (FaultKind::OverflowWrite, LintClass::DynamicOnly, &[]),
    (FaultKind::UnderflowWrite, LintClass::DynamicOnly, &[]),
    (
        FaultKind::UseAfterFree,
        LintClass::StaticallyDetectable,
        &[Rule::AccessAfterClear],
    ),
    (
        FaultKind::DoubleFree,
        LintClass::StaticallyDetectable,
        &[Rule::DoubleBndclr, Rule::UnbalancedAtEnd],
    ),
    (
        FaultKind::PacTamper,
        LintClass::StaticallyDetectable,
        &[Rule::UnknownPac],
    ),
    (
        FaultKind::AhcForge,
        LintClass::StaticallyDetectable,
        &[Rule::UnknownPac],
    ),
];

fn profile() -> &'static WorkloadProfile {
    by_name("hmmer").expect("built-in workload")
}

fn stream() -> TraceGenerator {
    TraceGenerator::new(profile(), SafetyConfig::Aos, SCALE)
}

#[test]
fn clean_traces_lint_clean_on_every_system() {
    let layout = PointerLayout::default();
    for name in ["hmmer", "gcc", "mcf", "omnetpp"] {
        let p = by_name(name).expect("built-in workload");
        for system in SafetyConfig::ALL {
            let report = lint_stream(TraceGenerator::new(p, system, SCALE), layout);
            assert!(
                report.clean(),
                "clean {name} on {system} raised findings:\n{}",
                report.to_table()
            );
        }
    }
}

#[test]
fn fault_kind_lint_matrix_is_pinned() {
    let layout = PointerLayout::default();
    for (kind, class, rules) in PINNED {
        for seed in SEEDS {
            let plan = plan_fault(stream(), layout, FaultSpec { kind, seed })
                .expect("fault plans against the instrumented trace");
            let report = lint_stream(plan.apply(stream()), layout);
            assert_eq!(
                report.rules_fired(),
                rules.to_vec(),
                "{kind} seed {seed} fired unexpected rules:\n{}",
                report.to_table()
            );
            let flagged = !report.clean();
            assert_eq!(
                flagged,
                class == LintClass::StaticallyDetectable,
                "{kind} seed {seed}: classification drifted from {class}"
            );
        }
    }
}

/// The union property behind the paper's design: every fault kind is
/// caught by at least one detector — statically by the linter, or
/// dynamically by the AOS machine. For the dynamic-only kinds the
/// machine replay is the *only* net, so it is asserted explicitly.
#[test]
fn static_and_dynamic_detectors_cover_every_kind() {
    let layout = PointerLayout::default();
    let sut = SystemUnderTest::scaled(SafetyConfig::Aos, SCALE);
    for (kind, class, _) in PINNED {
        if class != LintClass::DynamicOnly {
            continue; // statically covered, pinned above
        }
        for seed in SEEDS {
            let plan = plan_fault(stream(), layout, FaultSpec { kind, seed })
                .expect("fault plans against the instrumented trace");
            let stats = Machine::new(sut.machine_config()).run(plan.apply(stream()));
            assert!(
                stats.violations > 0,
                "{kind} seed {seed} is dynamic-only but the AOS machine missed it"
            );
        }
    }
}

/// The full campaign's cross-check annotation agrees with the pinned
/// matrix: consistent, clean-trace clean, and each kind classified
/// exactly as above.
#[test]
fn campaign_cross_check_agrees_with_the_pinned_matrix() {
    use aos_core::experiment::campaign::CampaignOptions;
    let config = FaultCampaignConfig {
        options: CampaignOptions::with_threads(4),
        ..FaultCampaignConfig::standard(*profile(), SCALE, vec![1, 7])
    };
    let outcome = run_fault_campaign(&config).expect("campaign runs");
    assert!(
        outcome.lint.is_consistent(),
        "{}",
        outcome.lint.to_json_value()
    );
    assert_eq!(outcome.lint.clean_diagnostics, 0);
    for (kind, class, rules) in PINNED {
        let check = outcome
            .lint
            .kinds
            .iter()
            .find(|c| c.kind == kind)
            .expect("every kind checked");
        assert_eq!(check.classification(), class, "{kind}");
        let names: Vec<&str> = rules.iter().map(|r| r.name()).collect();
        assert_eq!(check.rules, names, "{kind}");
    }
    let json = outcome.report.to_json();
    assert!(json.contains("\"lint_cross_check\": {\"clean_diagnostics\": 0, \"consistent\": true,"));
}

/// The cross-paper detection matrix, pinned by rule name over all
/// eleven attack kinds (six base injectors + five composite
/// primitives) and all four static policies. Each column is one
/// paper's abstract model; the disagreement cells are the point:
/// CryptSan's key revocation catches the dangling re-sign that AOS's
/// size-0 `pacma` launders straight past PACSan, PACTight sees only
/// forgeries and class confusion, and nobody proves spatial
/// overflows statically.
const POLICY_PINNED: [(&str, [&[&str]; 4]); 11] = [
    ("overflow", [&[], &[], &[], &[]]),
    ("underflow", [&[], &[], &[], &[]]),
    (
        "uaf",
        [&["access-after-clear"], &["revoked-key"], &[], &[]],
    ),
    (
        "double-free",
        [
            &["double-bndclr", "unbalanced-at-end"],
            &["double-revoke"],
            &["double-invalidate"],
            &[],
        ],
    ),
    (
        "pac-tamper",
        [
            &["unknown-pac"],
            &["unallocated-key"],
            &["unsealed-pointer"],
            &["forged-pointer"],
        ],
    ),
    (
        "ahc-forge",
        [
            &["unknown-pac"],
            &["unallocated-key"],
            &["unsealed-pointer"],
            &["forged-pointer"],
        ],
    ),
    ("heap-spray", [&[], &[], &[], &[]]),
    (
        "pac-brute-force",
        [
            &["unknown-pac"],
            &["unallocated-key"],
            &["unsealed-pointer"],
            &["forged-pointer"],
        ],
    ),
    (
        "ahc-confusion",
        [
            &["access-ahc-mismatch"],
            &[],
            &["seal-class-mismatch"],
            &["integrity-class-mismatch"],
        ],
    ),
    (
        "dangling-resign",
        [&["access-after-clear"], &["revoked-key"], &[], &[]],
    ),
    ("toctou-resize", [&[], &[], &[], &[]]),
];

/// Every (kind, policy) cell of [`POLICY_PINNED`] is observed on a
/// real injected stream, and the library's own pinned tables (which
/// the strict `--policy` gates enforce) agree with this test's copy.
#[test]
fn the_cross_paper_policy_matrix_is_pinned_for_all_eleven_kinds() {
    let layout = PointerLayout::default();
    let trace = stream;
    assert_eq!(
        POLICY_PINNED.len(),
        StepKind::all().count(),
        "a new attack kind needs a pinned matrix row"
    );
    for (i, (name, expected)) in POLICY_PINNED.iter().enumerate() {
        let step = StepKind::parse(name).expect("pinned kind parses");
        let spec = ScenarioSpec {
            seed: 100 + i as u64,
            steps: vec![step],
        };
        let plan = plan_scenario(&spec, &trace, layout).expect("plan");
        assert!(
            plan.steps.iter().all(|s| s.static_pinned),
            "{name}: seed {} collided with a trace PAC; pick another",
            spec.seed
        );
        let reports = MatrixScan::run(
            &Policy::ALL,
            plan.apply(stream()),
            layout,
            &Telemetry::disabled(),
        );
        for (p, report) in reports.iter().enumerate() {
            assert_eq!(
                report.rule_names_fired(),
                expected[p].to_vec(),
                "{name} under {}: rule set drifted off the pinned matrix",
                report.policy.name()
            );
        }
        for (p, policy) in Policy::ALL.iter().enumerate() {
            assert_eq!(
                plan.expected_policy_rules(*policy),
                expected[p].to_vec(),
                "{name}: the library's pinned table disagrees with the test's under {}",
                policy.name()
            );
        }
    }
}

/// The refactor guarantee: the AOS policy run through [`MatrixScan`]
/// is bit-identical to the pre-framework [`lint_stream`] verifier —
/// same per-rule counts, same op tally — on the clean trace and on
/// every injected kind.
#[test]
fn the_aos_policy_is_bit_identical_to_the_linter() {
    let layout = PointerLayout::default();
    let trace = stream;
    let compare = |label: &str, faulted: &ScenarioPlanOrClean| {
        let matrix_report = match faulted {
            ScenarioPlanOrClean::Clean => MatrixScan::run(
                &[Policy::Aos],
                stream(),
                layout,
                &Telemetry::disabled(),
            ),
            ScenarioPlanOrClean::Planned(plan) => MatrixScan::run(
                &[Policy::Aos],
                plan.apply(stream()),
                layout,
                &Telemetry::disabled(),
            ),
        };
        let legacy = match faulted {
            ScenarioPlanOrClean::Clean => lint_stream(stream(), layout),
            ScenarioPlanOrClean::Planned(plan) => lint_stream(plan.apply(stream()), layout),
        };
        let legacy = PolicyReport::from_lint(&legacy);
        assert_eq!(
            matrix_report[0].rule_counts, legacy.rule_counts,
            "{label}: per-rule counts drifted between the framework and the linter"
        );
        assert_eq!(matrix_report[0].ops_scanned, legacy.ops_scanned, "{label}");
    };
    compare("clean", &ScenarioPlanOrClean::Clean);
    for (i, step) in StepKind::all().enumerate() {
        let spec = ScenarioSpec {
            seed: 100 + i as u64,
            steps: vec![step],
        };
        let plan = plan_scenario(&spec, &trace, layout).expect("plan");
        compare(step.name(), &ScenarioPlanOrClean::Planned(plan));
    }
}

/// Helper enum for [`the_aos_policy_is_bit_identical_to_the_linter`]:
/// the clean stream has no plan to apply.
enum ScenarioPlanOrClean {
    Clean,
    Planned(aos_fuzz::ScenarioPlan),
}

/// The memory-discipline proof: linting a trace an order of magnitude
/// longer than the default sweep keeps (a) pipeline op buffering at
/// the generator's own O(window) — the linter adds none — and (b)
/// linter state bounded by distinct PACs, not ops. No `Vec<Op>` ever
/// exists in this test.
#[test]
fn linting_stays_o_live_pacs_memory() {
    let layout = PointerLayout::default();
    let telemetry = Telemetry::enabled();
    let long = TraceGenerator::new(profile(), SafetyConfig::Aos, 0.05);
    let report = lint_stream_metered(long, layout, &telemetry);
    assert!(report.ops_scanned > 100_000, "scale 0.05 is a long stream");
    assert!(
        report.pipeline_peak_buffered_ops < 1024,
        "pipeline buffered {} ops — trace materialized?",
        report.pipeline_peak_buffered_ops
    );
    assert!(
        (report.distinct_pacs as u64) < layout.pac_space(),
        "tracked PACs exceed the PAC space"
    );
    assert!(
        (report.distinct_pacs as u64) * 100 < report.ops_scanned,
        "linter state ({} PACs) should be orders of magnitude below ops ({})",
        report.distinct_pacs,
        report.ops_scanned
    );
    // The telemetry ledger agrees with the report's own accounting.
    let snap = telemetry.snapshot();
    assert_eq!(
        snap.counter(aos_util::Counter::LintOpsScanned),
        report.ops_scanned
    );
    assert!(report.clean(), "clean long trace must lint clean");
}
