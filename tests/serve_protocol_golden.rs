//! Golden-file pin of the `aos-serve/v1` wire protocol.
//!
//! The service answers with hand-rolled JSON whose key order is part
//! of the interface (scripts `cut`/`grep` these lines, and the
//! protocol doc in `crates/serve/src/proto.rs` spells the order out).
//! This test renders every request and response shape the protocol
//! has — deterministically, without a live service — and snapshots
//! the exact key sequence of each. Regenerate after an intentional
//! protocol change with:
//!
//! ```text
//! AOS_UPDATE_GOLDEN=1 cargo test --test serve_protocol_golden
//! ```

use aos_isa::SafetyConfig;
use aos_serve::proto::{
    render_failed, render_ok, render_ready, render_rejected, render_shutdown,
};
use aos_serve::{execute, parse_request, JobSpec, ReplayMode};
use aos_util::Telemetry;

const GOLDEN: &str = "tests/golden/serve_protocol_v1.keys";
const SCALE: f64 = 0.004;

/// Every JSON object key in document order: a quoted token directly
/// followed by a colon (same scanner as the report goldens).
fn ordered_keys(json: &str) -> Vec<String> {
    let bytes = json.as_bytes();
    let mut keys = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'"' {
            i += 1;
            continue;
        }
        let start = i + 1;
        let mut j = start;
        while j < bytes.len() && bytes[j] != b'"' {
            if bytes[j] == b'\\' {
                j += 1;
            }
            j += 1;
        }
        let mut k = j + 1;
        while k < bytes.len() && bytes[k] == b' ' {
            k += 1;
        }
        if k < bytes.len() && bytes[k] == b':' {
            keys.push(json[start..j].to_string());
        }
        i = j + 1;
    }
    keys
}

fn run(spec: JobSpec) -> String {
    execute(&spec, &Telemetry::disabled()).expect("job body")
}

/// Every protocol shape as a named, deterministically rendered line.
fn shapes() -> Vec<(&'static str, String)> {
    let dir = std::env::temp_dir().join("aos-serve-protocol-golden");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let corpus = dir.join("proto.aosc").display().to_string();
    std::fs::remove_file(&corpus).ok();

    // Canonical request lines (their key order is the documented
    // spelling; each must parse).
    let requests = vec![
        (
            "request.trace",
            format!(
                r#"{{"proto":"aos-serve/v1","id":"j1","kind":"trace","workload":"mcf","system":"aos","scale":{SCALE}}}"#
            ),
        ),
        (
            "request.lint",
            format!(
                r#"{{"proto":"aos-serve/v1","id":"j2","kind":"lint","workload":"mcf","system":"aos","scale":{SCALE}}}"#
            ),
        ),
        (
            "request.campaign",
            format!(
                r#"{{"proto":"aos-serve/v1","id":"j3","kind":"campaign","workloads":"mcf","systems":"baseline,aos","scale":{SCALE}}}"#
            ),
        ),
        (
            "request.corpus_record",
            format!(
                r#"{{"proto":"aos-serve/v1","id":"j4","kind":"corpus_record","corpus":"{corpus}","workloads":"mcf","systems":"aos","scale":{SCALE}}}"#
            ),
        ),
        (
            "request.corpus_replay",
            format!(
                r#"{{"proto":"aos-serve/v1","id":"j5","kind":"corpus_replay","corpus":"{corpus}","entry":"mcf-aos","mode":"sim"}}"#
            ),
        ),
        (
            "request.corpus_verify",
            format!(
                r#"{{"proto":"aos-serve/v1","id":"j6","kind":"corpus_verify","corpus":"{corpus}"}}"#
            ),
        ),
        (
            "request.shutdown",
            r#"{"proto":"aos-serve/v1","kind":"shutdown"}"#.to_string(),
        ),
    ];
    for (name, line) in &requests {
        parse_request(line, false).unwrap_or_else(|e| panic!("{name} must parse: {e}"));
    }

    let record = run(JobSpec::CorpusRecord {
        path: corpus.clone(),
        workloads: vec!["mcf".into()],
        systems: vec![SafetyConfig::Aos],
        scale: SCALE,
    });
    let replay_sim = run(JobSpec::CorpusReplay {
        path: corpus.clone(),
        entry: "mcf-aos".into(),
        mode: ReplayMode::Sim,
    });
    let replay_lint = run(JobSpec::CorpusReplay {
        path: corpus.clone(),
        entry: "mcf-aos".into(),
        mode: ReplayMode::Lint,
    });
    let verify = run(JobSpec::CorpusVerify {
        path: corpus.clone(),
    });
    std::fs::remove_file(&corpus).ok();

    let mut shapes = requests;
    shapes.extend([
        ("response.ready", render_ready()),
        (
            "response.ok.trace",
            render_ok(
                "j1",
                1,
                &run(JobSpec::Trace {
                    workload: "mcf".into(),
                    system: SafetyConfig::Aos,
                    scale: SCALE,
                }),
            ),
        ),
        (
            "response.ok.lint",
            render_ok(
                "j2",
                1,
                &run(JobSpec::Lint {
                    workload: "mcf".into(),
                    system: SafetyConfig::Aos,
                    scale: SCALE,
                }),
            ),
        ),
        (
            "response.ok.campaign",
            render_ok(
                "j3",
                1,
                &run(JobSpec::Campaign {
                    workloads: vec!["mcf".into()],
                    systems: vec![SafetyConfig::Baseline, SafetyConfig::Aos],
                    scale: SCALE,
                }),
            ),
        ),
        ("response.ok.corpus_record", render_ok("j4", 1, &record)),
        ("response.ok.corpus_replay.sim", render_ok("j5", 1, &replay_sim)),
        (
            "response.ok.corpus_replay.lint",
            render_ok("j5", 1, &replay_lint),
        ),
        ("response.ok.corpus_verify", render_ok("j6", 1, &verify)),
        (
            "response.rejected.backpressure",
            render_rejected(Some("j7"), "resource", "queue full (16 jobs queued)", Some(25)),
        ),
        (
            "response.rejected.malformed",
            render_rejected(None, "input", "aos-serve request: not JSON", None),
        ),
        (
            "response.failed",
            render_failed("j8", 3, "timeout", "trace mcf/AOS timed out after 30000ms"),
        ),
        ("response.shutdown", render_shutdown(4)),
    ]);
    shapes
}

#[test]
fn serve_protocol_v1_key_sequences_match_golden() {
    let mut doc = String::new();
    for (name, line) in shapes() {
        doc.push_str("== ");
        doc.push_str(name);
        doc.push_str(" ==\n");
        for key in ordered_keys(&line) {
            doc.push_str(&key);
            doc.push('\n');
        }
    }

    if std::env::var_os("AOS_UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN, &doc).expect("write golden");
    }
    let golden = std::fs::read_to_string(GOLDEN)
        .expect("golden file missing; regenerate with AOS_UPDATE_GOLDEN=1");
    assert_eq!(
        doc, golden,
        "the aos-serve/v1 key names/order changed; if intentional, bump the \
         protocol version and rerun with AOS_UPDATE_GOLDEN=1"
    );
}

/// Every line of the protocol is one line (NDJSON) and self-identifies
/// with the proto tag as its first key.
#[test]
fn every_shape_is_single_line_and_proto_tagged() {
    for (name, line) in shapes() {
        assert!(!line.contains('\n'), "{name} spans lines: {line}");
        assert!(
            line.starts_with("{\"proto\":\"aos-serve/v1\""),
            "{name} must lead with the proto tag: {line}"
        );
        assert_eq!(
            ordered_keys(&line).first().map(String::as_str),
            Some("proto"),
            "{name}"
        );
    }
}

/// The `result` payload of every ok response ends with its digest (or
/// summary) field — consumers can rely on digests being present
/// without parsing nested JSON.
#[test]
fn ok_results_carry_digests() {
    let shapes = shapes();
    let find = |name: &str| {
        &shapes
            .iter()
            .find(|(n, _)| *n == name)
            .unwrap_or_else(|| panic!("shape {name}"))
            .1
    };
    assert!(find("response.ok.trace").contains("\"stats_digest\":\""));
    assert!(find("response.ok.corpus_replay.sim").contains("\"stats_digest\":\""));
    assert!(find("response.ok.lint").contains("\"report_digest\":\""));
    assert!(find("response.ok.corpus_replay.lint").contains("\"report_digest\":\""));
    assert!(find("response.ok.corpus_verify").contains("\"quarantined\":"));
}
