//! The adversarial fuzzing matrix: every composite attack primitive,
//! alone and chained, lands exactly on its pinned static/dynamic
//! expectation — detected by the AOS machines, missed by the
//! unprotected ones, flagged (or deliberately not) by the linter —
//! and the banked golden corpus replays those verdicts bit-stably.
//!
//! Regenerate the golden corpus after an intentional change to the
//! primitives, the trace generator, or the corpus format with:
//!
//! ```text
//! AOS_UPDATE_GOLDEN=1 cargo test --test fuzz_matrix
//! ```

use aos_fuzz::differential::{run_scenario, CleanBaseline};
use aos_fuzz::scenario::plan_scenario;
use aos_fuzz::{
    bank_scenarios, replay_corpus, run_fuzz, CompositeKind, FuzzConfig, ScenarioSpec, StepKind,
};
use aos_isa::SafetyConfig;
use aos_ptrauth::PointerLayout;
use aos_util::{Counter, Telemetry};
use aos_workloads::profile::by_name;
use aos_workloads::TraceGenerator;

const GOLDEN: &str = "tests/golden/fuzz/composites.aosc";
const WORKLOAD: &str = "hmmer";
const SCALE: f64 = 0.004;

/// One fixed-seed single-step chain per composite primitive — the
/// permanent regression corpus.
fn golden_specs() -> Vec<ScenarioSpec> {
    CompositeKind::ALL
        .into_iter()
        .enumerate()
        .map(|(i, kind)| ScenarioSpec {
            seed: 100 + i as u64,
            steps: vec![StepKind::Composite(kind)],
        })
        .collect()
}

fn trace_factory() -> impl Fn() -> TraceGenerator {
    let profile = by_name(WORKLOAD).expect("workload profile exists");
    move || TraceGenerator::new(profile, SafetyConfig::Aos, SCALE)
}

/// The acceptance matrix: each composite chain is detected by both
/// AOS machines with its exact pinned violation delta, missed by
/// Baseline/Watchdog/PA, and classified by the linter exactly as
/// pinned — with zero differential findings.
#[test]
fn every_composite_chain_is_detected_by_aos_and_missed_by_baseline() {
    let profile = by_name(WORKLOAD).expect("workload profile exists");
    let baseline = CleanBaseline::measure(profile, SCALE);
    let trace = trace_factory();
    for spec in golden_specs() {
        let kind = match spec.steps[0] {
            StepKind::Composite(kind) => kind,
            StepKind::Base(_) => unreachable!("golden specs are composites"),
        };
        let plan = plan_scenario(&spec, &trace, PointerLayout::default()).expect("plan");
        let outcome = run_scenario(profile, SCALE, &plan, &baseline);
        assert!(
            outcome.findings.is_empty(),
            "{kind}: {:?}",
            outcome.findings
        );
        let pinned = kind.expectation().exact_delta.expect("composites pin deltas");
        for verdict in &outcome.systems {
            assert_eq!(verdict.clean_violations, 0, "{kind} on {}", verdict.system);
            let expected = if verdict.system.uses_aos() { pinned } else { 0 };
            assert_eq!(
                verdict.delta(),
                expected,
                "{kind} on {}: wrong violation delta",
                verdict.system
            );
        }
        let statically_flagged = outcome.lint_diagnostics > 0;
        assert_eq!(
            statically_flagged,
            !kind.expectation().rules.is_empty(),
            "{kind}: linter verdict off the pinned static/dynamic split"
        );
    }
}

/// Composites compose: all five in one chain, each in a private
/// synthetic region with private PACs, still produce the exact sum of
/// their pinned deltas and the union of their pinned rules.
#[test]
fn the_full_composite_chain_composes_without_interference() {
    let profile = by_name(WORKLOAD).expect("workload profile exists");
    let baseline = CleanBaseline::measure(profile, SCALE);
    let trace = trace_factory();
    let spec = ScenarioSpec {
        seed: 4242,
        steps: CompositeKind::ALL
            .into_iter()
            .map(StepKind::Composite)
            .collect(),
    };
    let plan = plan_scenario(&spec, &trace, PointerLayout::default()).expect("plan");
    let expected_delta: u64 = CompositeKind::ALL
        .into_iter()
        .filter_map(|k| k.expectation().exact_delta)
        .sum();
    let outcome = run_scenario(profile, SCALE, &plan, &baseline);
    assert!(outcome.findings.is_empty(), "{:?}", outcome.findings);
    for verdict in &outcome.systems {
        let expected = if verdict.system.uses_aos() {
            expected_delta
        } else {
            0
        };
        assert_eq!(verdict.delta(), expected, "on {}", verdict.system);
    }
}

/// `aos fuzz --seed N --budget B` twice produces identical digests
/// and identical reports — the determinism contract.
#[test]
fn fuzz_campaign_digest_is_deterministic_and_seed_steered() {
    let telemetry = Telemetry::disabled();
    let config = FuzzConfig {
        workload: WORKLOAD.to_string(),
        scale: SCALE,
        seed: 9,
        budget: 4,
        ..FuzzConfig::default()
    };
    let a = run_fuzz(&config, &telemetry).expect("fuzz");
    let b = run_fuzz(&config, &telemetry).expect("fuzz");
    assert_eq!(a.digest(), b.digest());
    assert_eq!(a.to_json(), b.to_json());
    let other = run_fuzz(
        &FuzzConfig {
            seed: 10,
            ..config
        },
        &telemetry,
    )
    .expect("fuzz");
    assert_ne!(a.digest(), other.digest(), "seed must steer the campaign");
}

/// The campaign is observable: the `fuzz_*` telemetry counters ledger
/// scenarios, steps and findings.
#[test]
fn fuzz_telemetry_counters_ledger_the_campaign() {
    let telemetry = Telemetry::enabled();
    let report = run_fuzz(
        &FuzzConfig {
            workload: WORKLOAD.to_string(),
            scale: SCALE,
            seed: 3,
            budget: 3,
            ..FuzzConfig::default()
        },
        &telemetry,
    )
    .expect("fuzz");
    let snapshot = telemetry.snapshot();
    assert_eq!(snapshot.counter(Counter::FuzzScenarios), 3);
    assert!(snapshot.counter(Counter::FuzzSteps) >= report.outcomes.len() as u64);
    assert_eq!(snapshot.counter(Counter::FuzzFindings), report.findings());
}

/// The banked golden corpus replays with bit-stable verdicts: the
/// recorded lint total and the per-system violation counts reproduce
/// exactly from the banked ops alone.
#[test]
fn golden_corpus_replays_verdict_stable() {
    if std::env::var_os("AOS_UPDATE_GOLDEN").is_some() {
        let outcomes = bank_scenarios(
            WORKLOAD,
            SCALE,
            &golden_specs(),
            GOLDEN,
            &Telemetry::disabled(),
        )
        .expect("bank golden corpus");
        assert!(
            outcomes.iter().all(|o| !o.is_finding()),
            "golden chains must be finding-free"
        );
    }
    let report = replay_corpus(GOLDEN, &Telemetry::disabled())
        .expect("golden corpus opens; regenerate with AOS_UPDATE_GOLDEN=1");
    assert_eq!(report.checks.len(), CompositeKind::ALL.len());
    assert!(report.is_stable(), "{:?}", report.checks);
}

/// Banking is a pure function of the specs: regenerating the corpus
/// from scratch reproduces the checked-in golden file byte for byte.
#[test]
fn golden_corpus_matches_regeneration_bit_for_bit() {
    if std::env::var_os("AOS_UPDATE_GOLDEN").is_some() {
        // The replay test above is rewriting the golden concurrently;
        // comparing against a file mid-write would be a false alarm.
        return;
    }
    let tmp = std::env::temp_dir().join("aos-fuzz-golden-regen.aosc");
    bank_scenarios(
        WORKLOAD,
        SCALE,
        &golden_specs(),
        &tmp,
        &Telemetry::disabled(),
    )
    .expect("regenerate");
    let fresh = std::fs::read(&tmp).expect("read regenerated corpus");
    let golden = std::fs::read(GOLDEN)
        .expect("golden corpus missing; regenerate with AOS_UPDATE_GOLDEN=1");
    assert_eq!(
        fresh, golden,
        "banked corpus bytes drifted from generation"
    );
    std::fs::remove_file(&tmp).ok();
}
