//! Robustness contract of `aos serve` (crates/serve): the service
//! stays up and keeps its protocol promises whatever a job does.
//!
//! Each test drives a full service session — reader, bounded queue,
//! guarded workers, collector — through an in-memory transcript and
//! asserts on the NDJSON it answered:
//!
//! - a full queue answers `rejected` with a `retry_after_ms` hint
//!   (explicit backpressure, no unbounded buffering);
//! - a wedged job hits its per-job deadline, burns its bounded retry
//!   budget (exponential backoff), and answers `failed`/`timeout`;
//! - a poisoned (panicking) job answers `failed`/`panic` and the
//!   *same worker* serves the next job — crash isolation;
//! - shutdown and EOF drain: every accepted job answers before the
//!   final `shutdown` line;
//! - a CRC-corrupted corpus block quarantines with a typed
//!   corruption error and a `corpus_crc_failures` count while the
//!   service keeps serving;
//! - a corpus replay through the service is bit-identical to the
//!   in-process batched pipeline (matching `stats_digest`).

use std::io::{Cursor, Write};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use aos_core::experiment::{overlap, SystemUnderTest};
use aos_isa::SafetyConfig;
use aos_serve::{serve, stats_digest, ServeOptions, ServeSummary};
use aos_util::{Counter, Gauge, Telemetry};

/// A writer the test can read back after the collector thread drops
/// its clone.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn contents(&self) -> String {
        String::from_utf8(self.0.lock().expect("buf lock").clone()).expect("utf8 output")
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("buf lock").extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn run_script(script: String, options: &ServeOptions) -> (ServeSummary, String) {
    let out = SharedBuf::default();
    let summary = serve(Cursor::new(script), out.clone(), options).expect("serve session");
    (summary, out.contents())
}

fn request(id: &str, kind: &str, extra: &str) -> String {
    format!("{{\"proto\":\"aos-serve/v1\",\"id\":\"{id}\",\"kind\":\"{kind}\"{extra}}}\n")
}

fn response_for<'a>(output: &'a str, id: &str) -> &'a str {
    let needle = format!("\"id\":\"{id}\"");
    output
        .lines()
        .find(|l| l.contains(&needle))
        .unwrap_or_else(|| panic!("no response for {id} in:\n{output}"))
}

fn temp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("aos-serve-robustness");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

#[test]
fn full_queue_answers_rejected_with_retry_after() {
    let options = ServeOptions {
        queue_capacity: 1,
        workers: 1,
        test_jobs: true,
        retry_after_ms: 40,
        ..ServeOptions::default()
    };
    // One job holds the single worker; capacity 1 holds one more; the
    // remaining submissions must be pushed back, not buffered.
    let mut script = request("hold", "__sleep", ",\"millis\":300");
    for i in 0..6 {
        script.push_str(&request(&format!("q{i}"), "__sleep", ",\"millis\":1"));
    }
    let (summary, output) = run_script(script, &options);
    assert!(summary.rejected >= 1, "bounded queue never pushed back");
    assert_eq!(summary.accepted + summary.rejected, 7);
    let rejected = output
        .lines()
        .find(|l| l.contains("\"status\":\"rejected\""))
        .expect("a rejected response");
    assert!(
        rejected.contains("\"error_kind\":\"resource\""),
        "{rejected}"
    );
    assert!(rejected.contains("\"error\":\"queue full (1 jobs queued)\""));
    assert!(
        rejected.contains("\"retry_after_ms\":40"),
        "backpressure must carry the retry hint: {rejected}"
    );
    // Everything that was accepted still answered.
    assert_eq!(summary.completed(), summary.accepted);
}

#[test]
fn wedged_job_times_out_after_its_bounded_retry_budget() {
    let options = ServeOptions {
        workers: 1,
        test_jobs: true,
        job_timeout: Some(Duration::from_millis(40)),
        retries: 2,
        backoff_base: Duration::from_millis(5),
        ..ServeOptions::default()
    };
    let script = request("wedge", "__sleep", ",\"millis\":5000")
        + &request("after", "__sleep", ",\"millis\":1");
    let (summary, output) = run_script(script, &options);
    let wedge = response_for(&output, "wedge");
    assert!(wedge.contains("\"status\":\"failed\""), "{wedge}");
    assert!(wedge.contains("\"error_kind\":\"timeout\""), "{wedge}");
    assert!(
        wedge.contains("\"attempts\":3"),
        "2 retries = 3 attempts, then the budget is spent: {wedge}"
    );
    assert!(wedge.contains("timed out after"), "{wedge}");
    assert_eq!(summary.timed_out, 1);
    assert_eq!(summary.retried, 2);
    // The worker that abandoned the wedged attempts still serves.
    assert!(response_for(&output, "after").contains("\"status\":\"ok\""));
}

#[test]
fn poisoned_job_is_isolated_and_the_service_survives() {
    let telemetry = Telemetry::enabled();
    let options = ServeOptions {
        workers: 1,
        test_jobs: true,
        retries: 0,
        telemetry: telemetry.clone(),
        ..ServeOptions::default()
    };
    let script = request("boom", "__poison", "")
        + &request(
            "alive",
            "lint",
            ",\"workload\":\"mcf\",\"system\":\"aos\",\"scale\":0.004",
        )
        + "{\"proto\":\"aos-serve/v1\",\"kind\":\"shutdown\"}\n";
    let (summary, output) = run_script(script, &options);
    let boom = response_for(&output, "boom");
    assert!(boom.contains("\"status\":\"failed\""), "{boom}");
    assert!(boom.contains("\"error_kind\":\"panic\""), "{boom}");
    assert!(
        boom.contains("deliberately panicked"),
        "the captured panic message surfaces: {boom}"
    );
    // The same (sole) worker thread runs the next job: isolation, not
    // a respawn.
    let alive = response_for(&output, "alive");
    assert!(alive.contains("\"status\":\"ok\""), "{alive}");
    assert!(alive.contains("\"clean\":true"), "{alive}");
    assert_eq!(summary.panicked, 1);
    assert_eq!(summary.succeeded, 1);
    assert!(summary.shutdown_requested);
    assert_eq!(
        telemetry.snapshot().counter(Counter::ServeJobsPanicked),
        1
    );
}

#[test]
fn shutdown_and_eof_drain_all_accepted_jobs() {
    for explicit_shutdown in [true, false] {
        let options = ServeOptions {
            workers: 2,
            test_jobs: true,
            ..ServeOptions::default()
        };
        let mut script = String::new();
        for i in 0..5 {
            script.push_str(&request(&format!("d{i}"), "__sleep", ",\"millis\":30"));
        }
        if explicit_shutdown {
            script.push_str("{\"proto\":\"aos-serve/v1\",\"kind\":\"shutdown\"}\n");
        }
        let (summary, output) = run_script(script, &options);
        assert_eq!(summary.accepted, 5);
        assert_eq!(
            summary.succeeded, 5,
            "drain must complete in-flight and queued jobs (shutdown={explicit_shutdown})"
        );
        assert_eq!(summary.shutdown_requested, explicit_shutdown);
        for i in 0..5 {
            assert!(response_for(&output, &format!("d{i}")).contains("\"status\":\"ok\""));
        }
        let last = output.lines().last().expect("output");
        assert!(
            last.contains("\"status\":\"shutdown\",\"jobs_completed\":5"),
            "the shutdown line is last and counts the drain: {last}"
        );
    }
}

#[test]
fn corrupted_corpus_block_quarantines_and_the_service_keeps_serving() {
    let path = temp("quarantine.aosc");
    std::fs::remove_file(&path).ok();
    let path_str = path.display().to_string();

    // Record through the service, then corrupt the stored block.
    let telemetry = Telemetry::enabled();
    let options = ServeOptions {
        workers: 1,
        telemetry: telemetry.clone(),
        ..ServeOptions::default()
    };
    let record = request(
        "rec",
        "corpus_record",
        &format!(
            ",\"corpus\":\"{path_str}\",\"workloads\":\"mcf\",\"systems\":\"baseline\",\"scale\":0.004"
        ),
    );
    let (summary, output) = run_script(record, &options);
    assert_eq!(summary.succeeded, 1, "{output}");

    let offset = aos_isa::corpus::CorpusReader::open(&path, Telemetry::disabled())
        .expect("open")
        .entries()[0]
        .offset;
    aos_fault::corpus::flip_block_bit(&path, offset, 0, 321).expect("inject");

    // Replay the damaged entry, then prove the service still serves.
    let script = request(
        "bad",
        "corpus_replay",
        &format!(",\"corpus\":\"{path_str}\",\"entry\":\"mcf-baseline\""),
    ) + &request(
        "still-alive",
        "lint",
        ",\"workload\":\"mcf\",\"system\":\"aos\",\"scale\":0.004",
    );
    let (summary, output) = run_script(script, &options);
    let bad = response_for(&output, "bad");
    assert!(bad.contains("\"status\":\"failed\""), "{bad}");
    assert!(
        bad.contains("\"error_kind\":\"corruption\""),
        "typed quarantine, not a crash: {bad}"
    );
    assert!(bad.contains("CRC mismatch"), "{bad}");
    assert!(response_for(&output, "still-alive").contains("\"status\":\"ok\""));
    assert_eq!(summary.failed, 1);
    assert_eq!(summary.succeeded, 1);
    assert!(
        telemetry.snapshot().counter(Counter::CorpusCrcFailures) >= 1,
        "the quarantine must be counted"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn service_replay_is_bit_identical_to_the_in_process_pipeline() {
    let path = temp("identity.aosc");
    std::fs::remove_file(&path).ok();
    let path_str = path.display().to_string();
    let options = ServeOptions {
        workers: 1,
        ..ServeOptions::default()
    };
    let script = request(
        "rec",
        "corpus_record",
        &format!(
            ",\"corpus\":\"{path_str}\",\"workloads\":\"mcf\",\"systems\":\"aos\",\"scale\":0.004"
        ),
    ) + &request(
        "rep",
        "corpus_replay",
        &format!(",\"corpus\":\"{path_str}\",\"entry\":\"mcf-aos\""),
    );
    let (summary, output) = run_script(script, &options);
    assert_eq!(summary.succeeded, 2, "{output}");

    // The same cell through the in-process batched pipeline.
    let profile = aos_workloads::profile::by_name("mcf").expect("profile");
    let out = overlap::run_overlapped(
        profile,
        &SystemUnderTest::scaled(SafetyConfig::Aos, 0.004),
    );
    let expected = format!("\"stats_digest\":\"{:016x}\"", stats_digest(&out.stats));
    let rep = response_for(&output, "rep");
    assert!(
        rep.contains(&expected),
        "service replay must be bit-identical to the pipeline:\n  {rep}\n  want {expected}"
    );
    assert!(rep.contains(&format!("\"cycles\":{}", out.stats.cycles)));
    assert!(rep.contains(&format!("\"retired_ops\":{}", out.stats.retired_ops)));
    std::fs::remove_file(&path).ok();
}

#[test]
fn serve_telemetry_reaches_the_v4_report_taxonomy() {
    // The serve_* counters and queue-depth gauge ride the same
    // snapshot/merge machinery as every other pipeline stage, so a
    // campaign report rendered from a serve session's registry carries
    // them under their wire names.
    let telemetry = Telemetry::enabled();
    let options = ServeOptions {
        workers: 1,
        test_jobs: true,
        telemetry: telemetry.clone(),
        ..ServeOptions::default()
    };
    let script = request("t1", "__sleep", ",\"millis\":1")
        + &request("t2", "__sleep", ",\"millis\":1");
    let (summary, _) = run_script(script, &options);
    assert_eq!(summary.succeeded, 2);
    let snap = telemetry.snapshot();
    assert_eq!(snap.counter(Counter::ServeJobsAccepted), 2);
    assert!(snap.gauge(Gauge::ServeQueueDepth) >= 1);
    // Wire names are stable (the golden report test pins their order
    // inside the v4 document).
    assert_eq!(Counter::ServeJobsAccepted.name(), "serve_jobs_accepted");
    assert_eq!(Counter::ServeJobsRejected.name(), "serve_jobs_rejected");
    assert_eq!(Counter::ServeJobsRetried.name(), "serve_jobs_retried");
    assert_eq!(Counter::ServeJobsTimedOut.name(), "serve_jobs_timed_out");
    assert_eq!(Counter::ServeJobsPanicked.name(), "serve_jobs_panicked");
    assert_eq!(Counter::CorpusBlocksWritten.name(), "corpus_blocks_written");
    assert_eq!(Counter::CorpusBlocksRead.name(), "corpus_blocks_read");
    assert_eq!(Counter::CorpusCrcFailures.name(), "corpus_crc_failures");
    assert_eq!(Gauge::ServeQueueDepth.name(), "serve_queue_depth");
}
