//! A minimal, dependency-free, **offline** stand-in for the
//! `criterion` benchmark harness, covering the subset of its API this
//! workspace's benches use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] (with `sample_size`,
//! `bench_function`, `bench_with_input`, `finish`), [`BenchmarkId`],
//! [`Bencher::iter`] / [`Bencher::iter_with_setup`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical sampling it runs each closure
//! for a short calibrated batch and prints the mean time per
//! iteration. The numbers are rough — the canonical perf artifact is
//! the std-only campaign smoke bench (`BENCH_campaign.json`) — but the
//! benches compile and run with zero registry dependencies.

use std::time::Instant;

pub use std::hint::black_box;

/// Target wall-clock spent measuring one benchmark.
const TARGET_NANOS: u128 = 200_000_000;

/// The top-level harness handle passed to every bench function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Criterion's CLI parsing — accepted and ignored here so the
    /// `criterion_group!` expansion stays source-compatible.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _parent: self,
        }
    }
}

/// A named collection of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Criterion's sample-count knob; measurement here is
    /// time-budgeted instead, so the value is ignored.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl IdLike, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id.render()), f);
        self
    }

    /// Runs one parameterized benchmark inside the group.
    pub fn bench_with_input<I, F>(&mut self, id: impl IdLike, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.render()), |b| f(b, input));
        self
    }

    /// Ends the group (criterion emits summary reports here; the shim
    /// has nothing left to do).
    pub fn finish(self) {}
}

/// Benchmark names: either a plain string or a [`BenchmarkId`].
pub trait IdLike {
    /// The display form used in the printed report line.
    fn render(&self) -> String;
}

impl IdLike for &str {
    fn render(&self) -> String {
        (*self).to_string()
    }
}

impl IdLike for String {
    fn render(&self) -> String {
        self.clone()
    }
}

impl IdLike for BenchmarkId {
    fn render(&self) -> String {
        self.0.clone()
    }
}

/// A `function_name/parameter` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds the two-part identifier.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    /// An identifier that is only a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{parameter}"))
    }
}

/// Passed to each benchmark closure; drives the measured iterations.
pub struct Bencher {
    /// Total measured time in nanoseconds, summed across batches.
    elapsed_nanos: u128,
    /// Total measured iterations across batches.
    iters: u64,
}

impl Bencher {
    /// Measures `routine` repeatedly until the time budget is spent.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let mut batch: u64 = 1;
        while self.elapsed_nanos < TARGET_NANOS {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.elapsed_nanos += start.elapsed().as_nanos();
            self.iters += batch;
            batch = (batch.saturating_mul(2)).min(1 << 20);
        }
    }

    /// Like [`Bencher::iter`], but runs `setup` outside the timed
    /// region before every measured call.
    pub fn iter_with_setup<I, O, S, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        while self.elapsed_nanos < TARGET_NANOS {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed_nanos += start.elapsed().as_nanos();
            self.iters += 1;
        }
    }
}

/// Measures one benchmark closure and prints its mean iteration time.
fn run_one<F>(id: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        elapsed_nanos: 0,
        iters: 0,
    };
    f(&mut bencher);
    if bencher.iters == 0 {
        println!("{id:<48} (no iterations)");
        return;
    }
    let per_iter = bencher.elapsed_nanos as f64 / bencher.iters as f64;
    println!(
        "{id:<48} {:>12.1} ns/iter ({} iters)",
        per_iter, bencher.iters
    );
}

/// Bundles bench functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let _ = $cfg;
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1u64 + 1));
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &v| {
            b.iter(|| v * 2)
        });
        group.finish();
    }
}
