//! A minimal, dependency-free, **offline** stand-in for the `proptest`
//! crate, implementing exactly the subset of its API this workspace
//! uses:
//!
//! - the [`proptest!`] macro (with `#![proptest_config(..)]`, typed
//!   arguments and `pat in strategy` arguments),
//! - [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_oneof!`],
//! - [`strategy::Strategy`] with `prop_map` and `boxed`,
//! - integer/bool [`arbitrary::any`], range strategies, tuple
//!   strategies, [`strategy::Just`] and [`collection::vec`],
//! - [`test_runner::Config`] (`ProptestConfig`) and
//!   [`test_runner::TestCaseError`].
//!
//! Semantics: each property runs for `Config::cases` iterations with a
//! deterministic per-test RNG (seeded from the test name), so failures
//! reproduce across runs and machines. There is **no shrinking** — a
//! failing case reports its case index and seed instead. This trades
//! minimal-counterexample quality for a build with zero registry
//! dependencies, which the offline build environment requires.

pub mod test_runner {
    //! The runner configuration, error type and deterministic RNG.

    /// Mirrors `proptest::test_runner::Config` for the fields we use.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    impl Config {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// Why a single test case failed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// An assertion failed: the property does not hold.
        Fail(String),
        /// The input was rejected (unused here, kept for API parity).
        Reject(String),
    }

    impl TestCaseError {
        /// A failed property.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// A rejected input.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "{r}"),
                TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
            }
        }
    }

    /// SplitMix64: small, fast, and good enough for input generation.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Creates a generator from a seed.
        pub fn from_seed(seed: u64) -> Self {
            Self(seed)
        }

        /// The next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// FNV-1a over a test's name: the per-test base seed.
    pub fn seed_from_name(name: &str) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and the combinators the workspace uses.

    use crate::test_runner::TestRng;

    /// A source of random values of one type.
    ///
    /// Unlike real proptest there is no value tree / shrinking: a
    /// strategy simply generates a value from the RNG.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through a function.
        fn prop_map<T, F>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { source: self, map }
        }

        /// Type-erases the strategy (used by [`prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.map)(self.source.generate(rng))
        }
    }

    /// Uniform choice among type-erased strategies ([`prop_oneof!`]).
    pub struct OneOf<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> OneOf<T> {
        /// Builds the union; panics on an empty option list.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self { options }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let pick = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[pick].generate(rng)
        }
    }

    macro_rules! unsigned_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end - start) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    start + (rng.next_u64() % (span + 1)) as $t
                }
            }
        )*};
    }

    unsigned_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    let off = rng.next_u64() % span;
                    ((self.start as i64).wrapping_add(off as i64)) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start() as i64, *self.end() as i64);
                    assert!(start <= end, "empty range strategy");
                    let span = end.wrapping_sub(start) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    let off = rng.next_u64() % (span + 1);
                    (start.wrapping_add(off as i64)) as $t
                }
            }
        )*};
    }

    signed_range_strategy!(i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($n:ident),+))*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($n,)+) = self;
                    ($($n.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod arbitrary {
    //! `any::<T>()` for the primitive types the workspace generates.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generates an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    //! `proptest::collection::vec`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A half-open range of permitted collection lengths.
    ///
    /// Only `usize`-based conversions exist, which is what lets bare
    /// literals like `1..24` infer as `usize` (matching real
    /// proptest's `Into<SizeRange>` parameter).
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { start: r.start, end: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { start: *r.start(), end: *r.end() + 1 }
        }
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            SizeRange { start: len, end: len + 1 }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let len = self.len.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector of `element`-generated values whose length is drawn
    /// uniformly from `len` (e.g. `1..24`, `0..=8`, or an exact size).
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, len: len.into() }
    }
}

pub mod prelude {
    //! Mirrors `proptest::prelude::*` for the names the workspace uses.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests: each `fn` becomes a `#[test]` running
/// `Config::cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr) $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __pt_config: $crate::test_runner::Config = $cfg;
            let __pt_base_seed =
                $crate::test_runner::seed_from_name(concat!(module_path!(), "::", stringify!($name)));
            for __pt_case in 0..__pt_config.cases {
                let __pt_seed = __pt_base_seed ^ (__pt_case as u64).wrapping_mul(0xA076_1D64_78BD_642F);
                let mut __pt_rng = $crate::test_runner::TestRng::from_seed(__pt_seed);
                let __pt_result = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $crate::__proptest_binds!(__pt_rng, $($params)*);
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                match __pt_result {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err(e) => panic!(
                        "property '{}' failed at case {} (seed {:#x}): {}",
                        stringify!($name),
                        __pt_case,
                        __pt_seed,
                        e
                    ),
                }
            }
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_binds {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $p:pat in $s:expr) => {
        let $p = $crate::strategy::Strategy::generate(&($s), &mut $rng);
    };
    ($rng:ident, $p:pat in $s:expr, $($rest:tt)*) => {
        let $p = $crate::strategy::Strategy::generate(&($s), &mut $rng);
        $crate::__proptest_binds!($rng, $($rest)*);
    };
    ($rng:ident, $i:ident : $t:ty) => {
        let $i = $crate::strategy::Strategy::generate(&$crate::arbitrary::any::<$t>(), &mut $rng);
    };
    ($rng:ident, $i:ident : $t:ty, $($rest:tt)*) => {
        let $i = $crate::strategy::Strategy::generate(&$crate::arbitrary::any::<$t>(), &mut $rng);
        $crate::__proptest_binds!($rng, $($rest)*);
    };
}

/// `assert!` that reports through [`test_runner::TestCaseError`].
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// `assert_eq!` that reports through [`test_runner::TestCaseError`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "{} ({:?} != {:?})",
                format!($($fmt)*),
                l,
                r
            )));
        }
    }};
}

/// `assert_ne!` that reports through [`test_runner::TestCaseError`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Uniform choice among strategies producing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(::std::vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_runner::TestRng::from_seed(7);
        for _ in 0..1000 {
            let v = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let w = (1u32..=32).generate(&mut rng);
            assert!((1..=32).contains(&w));
            let s = (-64i64..2048).generate(&mut rng);
            assert!((-64..2048).contains(&s));
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let strat = prop_oneof![
            (0u64..10).prop_map(|v| v * 2),
            Just(1u64),
        ];
        let mut rng = crate::test_runner::TestRng::from_seed(3);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!(v == 1 || (v % 2 == 0 && v < 20));
        }
    }

    #[test]
    fn vec_lengths_in_range() {
        let strat = crate::collection::vec((0u8..4, 0u64..64), 1..24);
        let mut rng = crate::test_runner::TestRng::from_seed(11);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((1..24).contains(&v.len()));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::from_seed(99);
        let mut b = crate::test_runner::TestRng::from_seed(99);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        /// The macro itself: typed args, `in` args, and config mix.
        #[test]
        fn macro_smoke(x: u64, y in 1u32..=8, v in crate::collection::vec(0i64..4, 0..5)) {
            prop_assert!(y >= 1 && y <= 8);
            prop_assert!(v.len() < 5);
            prop_assert_eq!(x, x);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_with_config(probe in 0u64..1) {
            prop_assert_eq!(probe, 0);
        }
    }
}
